"""The sharded-run coordinator: N shard processes, one merged result.

Builds on :mod:`repro.sim.shard` (the per-process engine) to run one
experiment point across processes split by landmark subarea:

1. **partition** — landmarks go to shards by greedy visit-count balancing
   (:func:`repro.mobility.stream.landmark_partition`);
2. **plan** — one streaming pass over the records finds every cross-shard
   transit and places epoch cuts by greedy interval stabbing: a cut is
   emitted at a transit's arrival only when no existing cut already falls
   inside its ``[depart, arrive]`` window, so every transit contains at
   least one barrier, at which its node (and nothing else) crosses; a
   visit overlap-closed from another shard hands off at a barrier placed
   exactly at the closing instant, with the departing shard force-closing
   the visit at export time;
3. **execute** — shard workers run epoch-by-epoch over pipes; the
   coordinator routes :class:`~repro.sim.shard.NodeTransitMsg` /
   :class:`~repro.sim.shard.BandwidthReportMsg` pairs between them in
   deterministic (shard, node-id) order;
4. **merge** — delivery samples are replayed in global event order into a
   fresh collector (bit-identical aggregate metrics, float summation
   order included), counters are summed, per-shard span trees fold into
   one tree, and the shard topology is stamped into the run's provenance
   ``execution`` block.

Points the decomposition cannot carry — contact-based or shard-unsafe
protocols, fault plans, traces where a node hops across three shards at a
single instant — fall back to the serial engine, marked
``serial-fallback`` in provenance, so a sharded scenario run always
completes with identical metrics.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import resource
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.baselines import make_protocol
from repro.eval.experiment import ExperimentResult, execute_config
from repro.eval.runner import PointSpec
from repro.eval.scenario import ScenarioResult, ScenarioSpec
from repro.mobility.stream import TraceStream, landmark_partition
from repro.mobility.trace import Trace, VisitRecord
from repro.obs import events as event_types
from repro.obs.provenance import RunProvenance
from repro.obs.spans import SpanRecorder
from repro.sim.checkpoint import (
    CheckpointError,
    RecoveryLog,
    dump_checkpoint,
    read_frame,
    try_load_checkpoint,
)
from repro.sim.engine import _VISIT_END, _VISIT_START, SimConfig
from repro.sim.metrics import MetricsCollector, MetricsSummary
from repro.sim.packets import generate_workload
from repro.sim.shard import PreparedGen, ShardInit, TraceView, shard_worker

__all__ = [
    "UnshardableTrace",
    "ShardRecoveryError",
    "ShardPlan",
    "plan_shards",
    "run_sharded_point",
    "execute_point_sharded",
    "run_scenario_sharded",
]


class UnshardableTrace(ValueError):
    """The trace's visit structure cannot be split at epoch barriers."""


class ShardRecoveryError(RuntimeError):
    """Supervised recovery of a shard fleet was exhausted or impossible.

    Raised by the coordinator after bounded restarts fail (or when a dead
    worker has no checkpoint to restart from); callers fall back to the
    serial engine exactly like an :class:`UnshardableTrace` point.
    """


RecordsFactory = Callable[[], Iterable[VisitRecord]]


@dataclass
class ShardPlan:
    """The full handoff schedule for one (trace, shard count) pair.

    Reusable across every point on the same trace: cuts and exports depend
    only on the visit records, never on protocol or workload knobs.
    """

    n_shards: int
    shard_of: Dict[int, int]
    cuts: List[float]
    #: node id -> shard owning it before its first visit
    owner0: Dict[int, int]
    #: per shard: epoch index -> [(nid, destination shard, force)], in
    #: stream order; ``force`` is ``None`` for a between-visits handoff or
    #: the ``(t, seq)`` of the overlap-closing start event when the
    #: departing shard must force-close the node's still-open visit
    exports: List[Dict[int, List[Tuple[int, int, Optional[Tuple[float, int]]]]]]
    n_cross: int = 0
    #: per shard: [(global index, record)] — only kept in materialized mode
    shard_records: Optional[List[List[Tuple[int, VisitRecord]]]] = None

    @property
    def n_epochs(self) -> int:
        return len(self.cuts) + 1


def _records_factory(trace: Union[Trace, TraceStream]) -> RecordsFactory:
    if isinstance(trace, TraceStream):
        return trace.iter_records
    return lambda: iter(trace.records)


def plan_shards(
    trace: Union[Trace, TraceStream],
    n_shards: int,
    *,
    collect_records: bool = True,
) -> ShardPlan:
    """Partition landmarks and schedule every cross-shard handoff.

    Two streaming passes: one to count visits per landmark (the partition
    weight), one replaying the engine's per-node visit state machine over
    the globally-sorted event stream — opens, same-landmark extensions,
    overlap-closes and end-closes, exactly as
    :meth:`~repro.sim.engine.Simulation._handle_visit_start` /
    ``_handle_visit_end`` would resolve them — to find each node's
    *effective* visit segments.  A cross-shard move between consecutive
    segments is a transit; cuts are placed by greedy interval stabbing so
    every transit window ``[depart, arrive]`` contains a barrier.

    An *overlap-close across shards* (a visit at landmark A force-closed
    by a visit starting at landmark B on another shard) is a zero-width
    transit: the cut goes exactly at the closing instant and the handoff
    entry carries the closing event's ``(t, seq)`` so the departing shard
    can run the serial engine's ``_end_visit`` at export time.  The one
    structure that still cannot shard is a node whose consecutive handoffs
    collapse onto a single barrier (an instantaneous hop through an
    intermediate shard); that raises :class:`UnshardableTrace` and callers
    fall back to the serial engine.
    """
    records = _records_factory(trace)
    counts: Dict[int, int] = {}
    for rec in records():
        counts[rec.landmark] = counts.get(rec.landmark, 0) + 1
    shard_of = landmark_partition(counts, n_shards)

    cuts: List[float] = []
    owner0: Dict[int, int] = {}
    exports: List[Dict[int, List[Tuple[int, int, Optional[Tuple[float, int]]]]]] = [
        {} for _ in range(n_shards)
    ]
    shard_records: Optional[List[List[Tuple[int, VisitRecord]]]] = (
        [[] for _ in range(n_shards)] if collect_records else None
    )
    # nid -> [current landmark or None, visit_until]; mirrors the fields the
    # engine keeps on MobileNode, fed the same events in the same order
    state: Dict[int, list] = {}
    # nid -> (depart time, departing shard) for a closed segment awaiting
    # the node's next open (i.e. the node is currently between landmarks)
    pending: Dict[int, Tuple[float, int]] = {}
    # nid -> epoch index of the node's last scheduled handoff; consecutive
    # handoffs must land at strictly increasing barriers or the node would
    # have to hop through an intermediate shard within a single barrier
    last_handoff: Dict[int, int] = {}
    n_cross = 0

    def _schedule(
        nid: int, from_shard: int, to_shard: int, k: int,
        force: Optional[Tuple[float, int]],
    ) -> None:
        nonlocal n_cross
        prev_k = last_handoff.get(nid)
        if prev_k is not None and k <= prev_k:
            raise UnshardableTrace(
                f"node {nid}: consecutive cross-shard handoffs collapse onto "
                f"one epoch barrier (epoch {k}) — the node would hop through "
                "an intermediate shard within a single barrier"
            )
        last_handoff[nid] = k
        n_cross += 1
        exports[from_shard].setdefault(k, []).append((nid, to_shard, force))
    # TraceStream.replay_events is already globally sorted; Trace's variant
    # emits per-record (start, end) pairs in record order and relies on the
    # consumer to sort — the state machine below needs true time order
    events = trace.replay_events(_VISIT_START, _VISIT_END)
    if not isinstance(trace, TraceStream):
        events = sorted(events, key=lambda ev: ev[:3])
    for t, kind, seq, rec in events:
        nid = rec.node
        if kind == _VISIT_START:
            lm = rec.landmark
            shard = shard_of[lm]
            if shard_records is not None:
                shard_records[shard].append((seq // 2, rec))
            st = state.get(nid)
            if st is None:
                st = state[nid] = [None, -float("inf")]
                owner0[nid] = shard
            cur_lm = st[0]
            if cur_lm is not None:
                if cur_lm == lm:
                    # same-landmark extension
                    if rec.end > st[1]:
                        st[1] = rec.end
                    continue
                if shard_of[cur_lm] != shard:
                    # cross-shard overlap-close: the serial engine force-
                    # closes the stale visit *inside* this very start event,
                    # so the node departs and arrives at the same instant.
                    # The cut goes exactly at t — end events at t run before
                    # the barrier, this start after it — and the departing
                    # shard force-closes at export time with this event's
                    # (t, seq) so protocol hooks and metric tags replay in
                    # serial order.
                    if not cuts or cuts[-1] < t:
                        cuts.append(t)
                    _schedule(
                        nid, shard_of[cur_lm], shard, len(cuts) - 1, (t, seq)
                    )
                    st[0], st[1] = lm, rec.end
                    continue
                # overlap-close + reopen, both on this shard: no handoff
                st[0], st[1] = lm, rec.end
                continue
            move = pending.pop(nid, None)
            if move is not None:
                depart, from_shard = move
                if from_shard != shard:
                    if not cuts or depart > cuts[-1]:
                        cuts.append(t)
                        k = len(cuts) - 1
                    else:
                        # covered: the first cut at or after the departure
                        # is guaranteed to fall inside [depart, arrive]
                        k = bisect_left(cuts, depart)
                    _schedule(nid, from_shard, shard, k, None)
            st[0], st[1] = lm, rec.end
        else:  # _VISIT_END
            st = state.get(nid)
            if st is None or st[0] != rec.landmark or t < st[1]:
                continue  # no-op end, exactly as the engine's gate
            pending[nid] = (t, shard_of[st[0]])
            st[0] = None
    return ShardPlan(
        n_shards=n_shards,
        shard_of=shard_of,
        cuts=cuts,
        owner0=owner0,
        exports=exports,
        n_cross=n_cross,
        shard_records=shard_records,
    )


def _prepared_gens(
    trace: Union[Trace, TraceStream], config: SimConfig
) -> List[PreparedGen]:
    """The serial engine's exact workload, with packet ids/TTLs pinned.

    Replays both RNG streams the serial engine consumes — the workload
    generator (``seed + 982451653``) and the TTL-jitter factory
    (``seed + 424243``) — so packet ``k`` of the sharded run carries the
    id, deadline and sequence number the serial run would mint.
    """
    warmup_end = trace.start_time + config.warmup_fraction * trace.duration
    gen_end = trace.start_time + config.generation_end_fraction * trace.duration
    out: List[PreparedGen] = []
    if gen_end <= warmup_end or config.effective_rate <= 0:
        return out
    gen_rng = np.random.default_rng(config.seed + 982451653)
    sources = (
        tuple(config.sources) if config.sources is not None else trace.landmarks
    )
    jitter_rng = np.random.default_rng(config.seed + 424243)
    jitter = config.ttl_jitter
    seq = 2 * len(trace)
    for k, ev in enumerate(
        generate_workload(
            sources,
            rate_per_landmark_per_day=config.effective_rate,
            start=warmup_end,
            end=gen_end,
            rng=gen_rng,
            destinations=config.destinations,
        )
    ):
        ttl = config.ttl
        if jitter > 0:
            ttl *= float(jitter_rng.uniform(1 - jitter, 1 + jitter))
        out.append(PreparedGen(ev.time, seq + k, ev.src, ev.dst, k, ttl))
    return out


def unshardable_reason(
    protocol_name: str,
    protocol_kwargs: Optional[dict],
    config: SimConfig,
    n_shards: int,
    n_landmarks: int,
) -> Tuple[Optional[str], str]:
    """Why this point must run serially (None = shardable) + display name."""
    protocol = make_protocol(protocol_name, **(protocol_kwargs or {}))
    if n_shards > n_landmarks:
        return (
            f"{n_shards} shards but only {n_landmarks} landmark subareas",
            protocol.name,
        )
    if config.faults is not None:
        return ("fault plans need the global event timeline", protocol.name)
    if protocol.uses_contacts:
        return (
            "node-node contacts draw from the global world RNG",
            protocol.name,
        )
    if not protocol.shard_safe:
        return ("protocol state does not decompose by subarea", protocol.name)
    return None, protocol.name


class _ShardDead(Exception):
    """Internal: a shard worker died or missed its barrier deadline."""

    def __init__(self, shard: int, why: str) -> None:
        super().__init__(f"shard {shard}: {why}")
        self.shard = shard
        self.why = why


def _find_resume_epoch(
    checkpoint_dir: Path, n_shards: int
) -> Optional[Tuple[int, List[list], List[str]]]:
    """Newest barrier whose commit record *and* all shard checkpoints verify.

    Returns ``(epoch, pending imports for epoch+1, shard checkpoint paths)``
    or None for a fresh start.  A truncated/corrupt file (chaos, crash
    mid-write) simply disqualifies that barrier and the previous one is
    tried — the framing makes partial state indistinguishable from absent.
    """
    for record_path in sorted(checkpoint_dir.glob("barrier-*.ckpt"), reverse=True):
        state = try_load_checkpoint(record_path)
        if state is None:
            continue
        epoch = int(state["epoch"])
        paths = [
            checkpoint_dir / f"shard{s}" / f"epoch-{epoch:06d}.ckpt"
            for s in range(n_shards)
        ]
        try:
            for p in paths:
                read_frame(p)
        except CheckpointError:
            continue
        return epoch, state["pending"], [str(p) for p in paths]
    return None


def _run_sharded(
    trace: Union[Trace, TraceStream],
    protocol_name: str,
    config: SimConfig,
    *,
    plan: ShardPlan,
    protocol_kwargs: Optional[dict] = None,
    source_factory: Optional[RecordsFactory] = None,
    checkpoint_dir: Optional["Path | str"] = None,
    recovery: Optional[RecoveryLog] = None,
    barrier_timeout: Optional[float] = None,
    max_restarts: int = 2,
    restart_backoff: float = 0.5,
    chaos_kill: Optional[Tuple[int, int]] = None,
) -> Tuple[MetricsCollector, Dict[str, Any], Dict[str, Any], Dict[str, Any]]:
    """Run the shard fleet; returns (merged collector, execution, phases, tree).

    With ``checkpoint_dir`` set the fleet is crash-safe: every worker
    commits a framed checkpoint at each epoch barrier (before its
    ``epoch_done`` reply), the coordinator commits a barrier record (the
    routed imports for the next epoch) once all replies are in, and a
    fresh coordinator resumes from the newest fully-verified barrier.
    The supervisor restarts dead workers (pipe EOF, or ``barrier_timeout``
    seconds of silence) from the previous barrier's checkpoint with
    exponential backoff, at most ``max_restarts`` times per shard, then
    raises :class:`ShardRecoveryError` for the caller's serial fallback.
    ``chaos_kill=(shard, epoch)`` arms the worker-side chaos injection
    (stripped on restart so recovery converges).
    """
    n_shards = plan.n_shards
    t_plan0 = perf_counter()
    gens = _prepared_gens(trace, config)
    gens_by_shard: List[List[PreparedGen]] = [[] for _ in range(n_shards)]
    for gen in gens:
        gens_by_shard[plan.shard_of[gen.src]].append(gen)
    shard_landmarks: List[List[int]] = [[] for _ in range(n_shards)]
    for lm in trace.landmarks:
        shard_landmarks[plan.shard_of[lm]].append(lm)
    shard_nodes: List[List[int]] = [[] for _ in range(n_shards)]
    for nid, shard in plan.owner0.items():
        shard_nodes[shard].append(nid)
    plan_seconds = perf_counter() - t_plan0

    ckpt_root = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if ckpt_root is not None:
        ckpt_root.mkdir(parents=True, exist_ok=True)

    ctx = multiprocessing.get_context()
    inits: List[ShardInit] = []
    pipes: List[Any] = [None] * n_shards
    procs: List[Any] = [None] * n_shards
    restarts = [0] * n_shards
    t_run0 = perf_counter()

    if source_factory is None and plan.shard_records is None:
        raise ValueError("plan has no shard_records and no source_factory given")
    for s in range(n_shards):
        view = TraceView(
            name=trace.name,
            start_time=trace.start_time,
            end_time=trace.end_time,
            nodes=tuple(sorted(shard_nodes[s])),
            landmarks=tuple(shard_landmarks[s]),
            n_records=len(trace),
        )
        inits.append(
            ShardInit(
                shard_id=s,
                view=view,
                config=config,
                protocol_name=protocol_name,
                protocol_kwargs=protocol_kwargs,
                cuts=plan.cuts,
                exports=plan.exports[s],
                gens=gens_by_shard[s],
                records=(
                    plan.shard_records[s] if source_factory is None else None
                ),
                source=source_factory,
                shard_of=plan.shard_of if source_factory is not None else None,
                checkpoint_dir=(
                    str(ckpt_root / f"shard{s}") if ckpt_root is not None else None
                ),
                chaos_exit_epoch=(
                    chaos_kill[1] if chaos_kill is not None and chaos_kill[0] == s
                    else None
                ),
            )
        )

    def _spawn(s: int, *, start_epoch: int = 0,
               resume_from: Optional[str] = None, strip_chaos: bool = False) -> None:
        init = inits[s]
        if start_epoch or resume_from or strip_chaos:
            init = dataclasses.replace(
                init,
                start_epoch=start_epoch,
                resume_from=resume_from,
                chaos_exit_epoch=None if strip_chaos else init.chaos_exit_epoch,
            )
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=shard_worker, args=(child_conn, init), daemon=True)
        proc.start()
        child_conn.close()
        pipes[s] = parent_conn
        procs[s] = proc

    def _send(s: int, msg: tuple) -> None:
        try:
            pipes[s].send(msg)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise _ShardDead(s, f"send failed: {exc!r}") from exc

    def _recv(s: int):
        try:
            if barrier_timeout is not None and not pipes[s].poll(barrier_timeout):
                raise _ShardDead(
                    s, f"missed barrier deadline ({barrier_timeout:g}s)"
                )
            msg = pipes[s].recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise _ShardDead(s, f"worker died: {exc!r}") from exc
        if msg[0] == "error":
            raise RuntimeError(f"shard {s} failed:\n{msg[1]}")
        return msg

    def _restart(s: int, epoch: int, why: str) -> None:
        """Replace a dead worker, restored to the state before ``epoch``."""
        if recovery is not None:
            recovery.emit(event_types.EXECUTOR_WORKER_DEAD,
                          shard=s, epoch=epoch, reason=why)
        restarts[s] += 1
        if restarts[s] > max_restarts:
            raise ShardRecoveryError(
                f"shard {s} died {restarts[s]} times (epoch {epoch}: {why}); "
                f"giving up after {max_restarts} restarts"
            )
        resume_from: Optional[str] = None
        if epoch > 0:
            if ckpt_root is None:
                raise ShardRecoveryError(
                    f"shard {s} died at epoch {epoch} ({why}) and "
                    "checkpointing is off — nothing to restart from"
                )
            path = ckpt_root / f"shard{s}" / f"epoch-{epoch - 1:06d}.ckpt"
            try:
                read_frame(path)
            except CheckpointError as exc:
                raise ShardRecoveryError(
                    f"shard {s} died at epoch {epoch} ({why}) and its "
                    f"checkpoint is unusable: {exc}"
                ) from exc
            resume_from = str(path)
        proc = procs[s]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
        if pipes[s] is not None:
            pipes[s].close()
        backoff = restart_backoff * (2 ** (restarts[s] - 1))
        time.sleep(backoff)
        _spawn(s, start_epoch=epoch, resume_from=resume_from, strip_chaos=True)
        if recovery is not None:
            recovery.emit(event_types.EXECUTOR_WORKER_RESTART,
                          shard=s, epoch=epoch, attempt=restarts[s],
                          backoff_seconds=backoff)

    try:
        start_epoch = 0
        pending: List[list] = [[] for _ in range(n_shards)]
        resume_ckpts: List[Optional[str]] = [None] * n_shards
        if ckpt_root is not None:
            resumed = _find_resume_epoch(ckpt_root, n_shards)
            if resumed is not None:
                epoch, pending, paths = resumed
                start_epoch = epoch + 1
                resume_ckpts = list(paths)
                if recovery is not None:
                    recovery.emit(event_types.EXECUTOR_RESUME,
                                  epoch=epoch, shards=n_shards)
        for s in range(n_shards):
            _spawn(s, start_epoch=start_epoch, resume_from=resume_ckpts[s])

        for k in range(start_epoch, plan.n_epochs):
            for s in range(n_shards):
                try:
                    _send(s, ("epoch", k, pending[s]))
                except _ShardDead as exc:
                    _restart(s, k, exc.why)
                    _send(s, ("epoch", k, pending[s]))
            incoming: List[list] = [[] for _ in range(n_shards)]
            for s in range(n_shards):
                while True:
                    try:
                        msg = _recv(s)
                        break
                    except _ShardDead as exc:
                        _restart(s, k, exc.why)
                        _send(s, ("epoch", k, pending[s]))
                if msg[0] != "epoch_done" or msg[1] != k:
                    raise RuntimeError(
                        f"shard {s}: unexpected barrier reply {msg[:2]}"
                    )
                for to_shard, items in msg[2].items():
                    incoming[to_shard].extend(items)
            # deterministic application order regardless of sender shard
            for batch in incoming:
                batch.sort(key=lambda pair: pair[0].nid)
            if ckpt_root is not None:
                # barrier commit record: with this + every shard's epoch-k
                # checkpoint on disk, a fresh coordinator restarts at k+1
                dump_checkpoint(
                    ckpt_root / f"barrier-{k:06d}.ckpt",
                    {"epoch": k, "pending": incoming},
                )
                if recovery is not None:
                    recovery.emit(event_types.EXECUTOR_CHECKPOINT,
                                  epoch=k, kind="barrier")
                for old in sorted(ckpt_root.glob("barrier-*.ckpt"))[:-2]:
                    try:
                        old.unlink()
                    except OSError:  # pragma: no cover - best-effort prune
                        pass
            pending = incoming

        payloads: List[Optional[dict]] = [None] * n_shards
        for s in range(n_shards):
            try:
                _send(s, ("finish",))
            except _ShardDead as exc:
                _restart(s, plan.n_epochs, exc.why)
                _send(s, ("finish",))
        for s in range(n_shards):
            while True:
                try:
                    payloads[s] = _recv(s)[1]
                    break
                except _ShardDead as exc:
                    _restart(s, plan.n_epochs, exc.why)
                    _send(s, ("finish",))
        for proc in procs:
            proc.join()
    finally:
        for pipe in pipes:
            if pipe is not None:
                pipe.close()
        for proc in procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join()
    run_seconds = perf_counter() - t_run0

    # -- merge ---------------------------------------------------------------
    t_merge0 = perf_counter()
    merged = MetricsCollector(
        table_entry_unit=config.table_entry_unit,
        experiment_duration=trace.duration,
    )
    samples: List[tuple] = []
    for payload in payloads:
        samples.extend(payload["samples"])
    # (t, kind, seq, intra) is the serial dispatch order; replaying in that
    # order rebuilds the delay list with identical float summation order
    samples.sort()
    for _t, _kind, _seq, _intra, delay, hops, dst in samples:
        merged.on_delivered(delay, dst, hops=hops)
    merged._generated.inc(sum(p["generated"] for p in payloads))
    merged._forwarding.inc(sum(p["forwarding_ops"] for p in payloads))
    merged._maintenance.inc(sum(p["maintenance_ops"] for p in payloads))
    merged._dropped_ttl.inc(sum(p["dropped_ttl"] for p in payloads))
    merge_seconds = perf_counter() - t_merge0

    # -- merged span tree and flat phase timings ------------------------------
    recorder = SpanRecorder()
    run_node = recorder.node("sharded_run", recorder.root)
    recorder.fold(run_node, plan_seconds + run_seconds + merge_seconds, 1)
    recorder.fold(run_node.child("plan"), plan_seconds, 1)
    recorder.fold(run_node.child("merge"), merge_seconds, 1)
    phases: Dict[str, Dict[str, float]] = {
        "shard.plan": {"seconds": plan_seconds, "calls": 1},
        "shard.run": {"seconds": run_seconds, "calls": 1},
        "shard.merge": {"seconds": merge_seconds, "calls": 1},
    }
    for payload in payloads:
        shard_node = run_node.child(f"shard{payload['shard']}")
        for name, info in payload["phase_timings"].items():
            recorder.fold(
                shard_node.child(name), info["seconds"], int(info["calls"])
            )
            slot = phases.setdefault(name, {"seconds": 0.0, "calls": 0})
            slot["seconds"] += info["seconds"]
            slot["calls"] += int(info["calls"])

    execution: Dict[str, Any] = {
        "mode": "sharded",
        "shards": n_shards,
        "epochs": plan.n_epochs,
        "cross_shard_transits": plan.n_cross,
        "landmarks_per_shard": [len(lms) for lms in shard_landmarks],
    }
    if any(restarts):
        execution["worker_restarts"] = list(restarts)
    if start_epoch:
        execution["resumed_at_epoch"] = start_epoch
    info: Dict[str, Any] = {
        "execution": execution,
        "span_tree": recorder.tree(recorder.root),
        "max_rss_kb": {
            "coordinator": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            "shards": [p["max_rss_kb"] for p in payloads],
        },
        "n_events": sum(p["n_events"] for p in payloads),
    }
    return merged, execution, phases, info


def _stamped_summary(
    merged: MetricsCollector,
    display_name: str,
    trace_name: str,
    config: SimConfig,
    scenario: Optional[dict],
    execution: Dict[str, Any],
    phases: Optional[Dict[str, Dict[str, float]]],
) -> MetricsSummary:
    provenance = RunProvenance.from_run(
        display_name, trace_name, config, scenario=scenario
    )
    provenance = dataclasses.replace(provenance, execution=execution)
    return merged.summary(
        display_name, trace_name, provenance=provenance, phase_timings=phases
    )


def run_sharded_point(
    trace: Union[Trace, TraceStream],
    protocol_name: str,
    config: SimConfig,
    *,
    shards: int,
    memory_kb: float,
    rate: float,
    seed: int,
    protocol_kwargs: Optional[dict] = None,
    scenario: Optional[dict] = None,
    plan: Optional[ShardPlan] = None,
    source_factory: Optional[RecordsFactory] = None,
    checkpoint_dir: Optional["Path | str"] = None,
    recovery: Optional[RecoveryLog] = None,
    barrier_timeout: Optional[float] = None,
    max_restarts: int = 2,
    restart_backoff: float = 0.5,
    chaos_kill: Optional[Tuple[int, int]] = None,
) -> Tuple[ExperimentResult, Dict[str, Any]]:
    """Run one point across ``shards`` processes; raises when unshardable.

    Pass ``source_factory`` (a fresh-record-iterator factory) to run in
    streaming mode: workers regenerate the stream and keep only their own
    subarea's records, so no process ever materializes the full trace.
    The crash-safety knobs (``checkpoint_dir`` onwards) are documented on
    :func:`_run_sharded`.
    """
    reason, display_name = unshardable_reason(
        protocol_name, protocol_kwargs, config, shards, trace.n_landmarks
    )
    if reason is not None:
        raise UnshardableTrace(reason)
    if plan is None:
        plan = plan_shards(trace, shards, collect_records=source_factory is None)
    merged, execution, phases, info = _run_sharded(
        trace,
        protocol_name,
        config,
        plan=plan,
        protocol_kwargs=protocol_kwargs,
        source_factory=source_factory,
        checkpoint_dir=checkpoint_dir,
        recovery=recovery,
        barrier_timeout=barrier_timeout,
        max_restarts=max_restarts,
        restart_backoff=restart_backoff,
        chaos_kill=chaos_kill,
    )
    summary = _stamped_summary(
        merged, display_name, trace.name, config, scenario, execution, phases
    )
    result = ExperimentResult(
        protocol=protocol_name,
        trace=trace.name,
        memory_kb=memory_kb,
        rate=rate,
        seed=seed,
        metrics=summary,
    )
    return result, info


def _stamp_execution(
    result: ExperimentResult, execution: Dict[str, Any]
) -> ExperimentResult:
    """Attach an execution block to an already-built serial result."""
    prov = result.metrics.provenance
    if prov is None:  # pragma: no cover - execute_config always stamps one
        return result
    summary = dataclasses.replace(
        result.metrics, provenance=dataclasses.replace(prov, execution=execution)
    )
    return dataclasses.replace(result, metrics=summary)


def execute_point_sharded(
    trace: Trace,
    point: PointSpec,
    config: SimConfig,
    *,
    shards: int,
    plan_cache: Optional[Dict[int, Any]] = None,
    checkpoint_dir: Optional["Path | str"] = None,
    recovery: Optional[RecoveryLog] = None,
    barrier_timeout: Optional[float] = None,
    max_restarts: int = 2,
    restart_backoff: float = 0.5,
    chaos_kill: Optional[Tuple[int, int]] = None,
    serial_checkpointer=None,
) -> Tuple[ExperimentResult, Dict[str, Any]]:
    """One scenario point, sharded when possible, serial otherwise.

    ``plan_cache`` (keyed by shard count) reuses the handoff schedule and
    record buckets across every point of one scenario — the plan depends
    only on the trace.  Serial fallbacks are marked in the provenance
    ``execution`` block but produce byte-identical metric values, so
    regression baselines hold either way.  The crash-safety knobs are
    documented on :func:`_run_sharded`; ``serial_checkpointer`` makes the
    serial path (fallback or unshardable) crash-safe too.  Exhausted
    shard-worker recovery (:class:`ShardRecoveryError`) falls back to the
    serial engine like any unshardable point.
    """
    reason, _ = unshardable_reason(
        point.protocol, point.protocol_kwargs, config, shards, trace.n_landmarks
    )
    if reason is None:
        plan: Optional[ShardPlan] = None
        cache_hit = plan_cache is not None and shards in plan_cache
        if cache_hit:
            plan = plan_cache[shards]
        try:
            if plan is None:
                plan = plan_shards(trace, shards)
                if plan_cache is not None:
                    plan_cache[shards] = plan
            if isinstance(plan, UnshardableTrace):
                raise plan
            return run_sharded_point(
                trace,
                point.protocol,
                config,
                shards=shards,
                memory_kb=point.memory_kb,
                rate=point.rate,
                seed=point.seed,
                protocol_kwargs=point.protocol_kwargs,
                scenario=point.scenario,
                plan=plan,
                checkpoint_dir=checkpoint_dir,
                recovery=recovery,
                barrier_timeout=barrier_timeout,
                max_restarts=max_restarts,
                restart_backoff=restart_backoff,
                chaos_kill=chaos_kill,
            )
        except UnshardableTrace as exc:
            reason = str(exc)
            if plan_cache is not None and shards not in plan_cache:
                plan_cache[shards] = exc  # don't re-plan a hopeless trace
        except ShardRecoveryError as exc:
            reason = str(exc)
            if recovery is not None:
                recovery.emit(event_types.EXECUTOR_FALLBACK, reason=reason)
    result = execute_config(
        trace,
        point.protocol,
        config,
        memory_kb=point.memory_kb,
        rate=point.rate,
        seed=point.seed,
        protocol_kwargs=point.protocol_kwargs,
        scenario=point.scenario,
        checkpointer=serial_checkpointer,
    )
    execution = {"mode": "serial-fallback", "shards": shards, "reason": reason}
    return _stamp_execution(result, execution), {
        "execution": execution,
        "span_tree": None,
        "max_rss_kb": None,
    }


def run_scenario_sharded(
    spec: ScenarioSpec,
    *,
    shards: int,
    trace: Optional[Trace] = None,
) -> Tuple[ScenarioResult, List[Dict[str, Any]]]:
    """Run every point of a scenario through the sharded coordinator.

    Returns the familiar :class:`ScenarioResult` (ingestable by the
    experiment store exactly like a serial run — metric values are
    identical) plus one per-point info dict with the execution block, the
    merged span tree and peak-RSS figures.
    """
    if shards < 2:
        raise ValueError(f"sharded runs need at least 2 shards, got {shards}")
    profile, tspec, materialized = spec.resolve_trace()
    entries = spec.entries(profile, tspec)
    if trace is None:
        trace = materialized.get(tspec.key)
    if trace is None:
        trace = tspec.materialize()
    plan_cache: Dict[int, Any] = {}
    points: List[PointSpec] = []
    results: List[ExperimentResult] = []
    infos: List[Dict[str, Any]] = []
    for _tspec, point, config in entries:
        result, info = execute_point_sharded(
            trace, point, config, shards=shards, plan_cache=plan_cache
        )
        points.append(point)
        results.append(result)
        infos.append(info)
    return ScenarioResult(spec=spec, points=points, results=results), infos
