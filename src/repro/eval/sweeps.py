"""Parameter sweeps regenerating Figs. 11-14 of the paper.

Each sweep returns a :class:`SweepResult`: per-protocol series of the four
metrics (success rate, average delay, forwarding cost, total cost) across
the swept parameter — exactly the data behind the paper's four-panel
figures.

Sweep points are independent simulations, so both sweeps submit all their
points upfront to :func:`repro.eval.runner.run_points`; pass ``jobs > 1``
(or ``"auto"``) to fan them out over worker processes.  Results are
bit-identical across ``jobs`` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines import PAPER_PROTOCOLS
from repro.eval.config import MEMORY_SWEEP_KB, RATE_SWEEP, TraceProfile
from repro.eval.runner import PointSpec, ProgressFn, TraceSpec, run_points
from repro.mobility.trace import Trace
from repro.utils.tables import format_table


@dataclass
class SweepResult:
    """Results of sweeping one parameter over several protocols."""

    trace: str
    parameter: str  # "memory_kb" | "rate"
    values: Tuple[float, ...]
    #: protocol -> metric -> series aligned with ``values``
    series: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    #: protocol -> per-point run provenance dicts aligned with ``values``
    #: (config, seed, sweep value, package version — makes exported JSON
    #: self-describing)
    provenance: Dict[str, List[Optional[dict]]] = field(default_factory=dict)
    #: wall-clock seconds/calls per engine phase, merged over every added
    #: point — per-worker PhaseProfiler reports folded back together, so
    #: parallel sweeps keep their phase breakdown
    phase_timings: Dict[str, Dict[str, float]] = field(default_factory=dict)

    METRICS = ("success_rate", "avg_delay", "forwarding_cost", "total_cost")

    def add(self, protocol: str, summary, *, value: Optional[float] = None) -> None:
        """Record one point's summary (and its provenance/phase timings)."""
        rec = self.series.setdefault(
            protocol, {m: [] for m in self.METRICS}
        )
        rec["success_rate"].append(summary.success_rate)
        rec["avg_delay"].append(summary.avg_delay)
        rec["forwarding_cost"].append(float(summary.forwarding_ops))
        rec["total_cost"].append(float(summary.total_cost))
        self.provenance.setdefault(protocol, []).append(
            self._provenance_row(summary, value)
        )
        self._merge_phase_timings(summary)

    def _provenance_row(self, summary, value: Optional[float]) -> Optional[dict]:
        """One JSON-shaped provenance row, stamped with the sweep point."""
        prov = getattr(summary, "provenance", None)
        if prov is None:
            return None
        row = prov.as_dict()
        row["sweep_parameter"] = self.parameter
        if value is not None:
            row["sweep_value"] = value
        return row

    def _merge_phase_timings(self, summary) -> None:
        timings = getattr(summary, "phase_timings", None)
        if not timings:
            return
        for phase, rec in timings.items():
            slot = self.phase_timings.setdefault(
                phase, {"seconds": 0.0, "calls": 0}
            )
            slot["seconds"] += float(rec.get("seconds", 0.0))
            slot["calls"] += int(rec.get("calls", 0))

    def phase_rows(self) -> List[Tuple[str, float, int]]:
        """``(phase, seconds, calls)`` rows, sorted by seconds descending.

        Seconds are raw floats; display formatting is the printer's job.
        """
        return [
            (name, float(rec["seconds"]), int(rec["calls"]))
            for name, rec in sorted(
                self.phase_timings.items(), key=lambda kv: -kv[1]["seconds"]
            )
        ]

    def metric_table(self, metric: str) -> str:
        """Render one metric panel as an ASCII table (a paper sub-figure)."""
        if metric not in self.METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        headers = [self.parameter] + list(self.series)
        rows = []
        for i, v in enumerate(self.values):
            row = [v] + [self.series[p][metric][i] for p in self.series]
            rows.append(row)
        return format_table(headers, rows, title=f"{self.trace}: {metric}")

    def _metric_series(self, protocol: str, metric: str) -> List[float]:
        if metric not in self.METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        series = self.series[protocol][metric]
        if not series:
            raise ValueError(
                f"no values recorded for protocol {protocol!r}, "
                f"metric {metric!r} — was the sweep run?"
            )
        return series

    def _require_series(self) -> None:
        if not self.series:
            raise ValueError(
                "sweep result is empty (no points were added) — "
                "run the sweep before querying it"
            )

    def final_values(self, metric: str) -> Dict[str, float]:
        """Metric value at the last sweep point, per protocol."""
        self._require_series()
        return {p: self._metric_series(p, metric)[-1] for p in self.series}

    def mean_values(self, metric: str) -> Dict[str, float]:
        """Metric averaged over the sweep, per protocol (for shape checks)."""
        self._require_series()
        out: Dict[str, float] = {}
        for p in self.series:
            series = self._metric_series(p, metric)
            out[p] = sum(series) / len(series)
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-shaped export: series plus per-point run provenance."""
        return {
            "trace": self.trace,
            "parameter": self.parameter,
            "values": list(self.values),
            "series": {p: dict(m) for p, m in self.series.items()},
            "provenance": {p: list(v) for p, v in self.provenance.items()},
            "phase_timings": {p: dict(t) for p, t in self.phase_timings.items()},
        }


def memory_sweep(
    trace: Trace,
    profile: TraceProfile,
    *,
    memories_kb: Sequence[float] = MEMORY_SWEEP_KB,
    rate: float = 500.0,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seed: int = 0,
    jobs: Union[int, str, None] = 1,
    trace_spec: Optional[TraceSpec] = None,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Fig. 11/12: the four metrics vs per-node memory (paper kB units)."""
    result = SweepResult(
        trace=trace.name, parameter="memory_kb", values=tuple(memories_kb)
    )
    points = [
        PointSpec(protocol=name, memory_kb=mem, rate=rate, seed=seed)
        for name in protocols
        for mem in memories_kb
    ]
    outcomes = run_points(
        trace, profile, points, jobs=jobs, trace_spec=trace_spec, progress=progress
    )
    for point, outcome in zip(points, outcomes):
        result.add(point.protocol, outcome.metrics, value=point.memory_kb)
    return result


def rate_sweep(
    trace: Trace,
    profile: TraceProfile,
    *,
    rates: Sequence[float] = RATE_SWEEP,
    memory_kb: float = 2000.0,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seed: int = 0,
    jobs: Union[int, str, None] = 1,
    trace_spec: Optional[TraceSpec] = None,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Fig. 13/14: the four metrics vs packet generation rate."""
    result = SweepResult(trace=trace.name, parameter="rate", values=tuple(rates))
    points = [
        PointSpec(protocol=name, memory_kb=memory_kb, rate=rate, seed=seed)
        for name in protocols
        for rate in rates
    ]
    outcomes = run_points(
        trace, profile, points, jobs=jobs, trace_spec=trace_spec, progress=progress
    )
    for point, outcome in zip(points, outcomes):
        result.add(point.protocol, outcome.metrics, value=point.rate)
    return result
