"""Parameter sweeps regenerating Figs. 11-14 of the paper.

Each sweep returns a :class:`SweepResult`: per-protocol series of the four
metrics (success rate, average delay, forwarding cost, total cost) across
the swept parameter — exactly the data behind the paper's four-panel
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import PAPER_PROTOCOLS
from repro.eval.config import MEMORY_SWEEP_KB, RATE_SWEEP, TraceProfile
from repro.eval.experiment import run_point
from repro.mobility.trace import Trace
from repro.utils.tables import format_table


@dataclass
class SweepResult:
    """Results of sweeping one parameter over several protocols."""

    trace: str
    parameter: str  # "memory_kb" | "rate"
    values: Tuple[float, ...]
    #: protocol -> metric -> series aligned with ``values``
    series: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    #: protocol -> per-point run provenance dicts aligned with ``values``
    #: (config, seed, package version — makes exported JSON self-describing)
    provenance: Dict[str, List[Optional[dict]]] = field(default_factory=dict)

    METRICS = ("success_rate", "avg_delay", "forwarding_cost", "total_cost")

    def add(self, protocol: str, summary) -> None:
        rec = self.series.setdefault(
            protocol, {m: [] for m in self.METRICS}
        )
        rec["success_rate"].append(summary.success_rate)
        rec["avg_delay"].append(summary.avg_delay)
        rec["forwarding_cost"].append(float(summary.forwarding_ops))
        rec["total_cost"].append(float(summary.total_cost))
        prov = getattr(summary, "provenance", None)
        self.provenance.setdefault(protocol, []).append(
            prov.as_dict() if prov is not None else None
        )

    def metric_table(self, metric: str) -> str:
        """Render one metric panel as an ASCII table (a paper sub-figure)."""
        if metric not in self.METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        headers = [self.parameter] + list(self.series)
        rows = []
        for i, v in enumerate(self.values):
            row = [v] + [self.series[p][metric][i] for p in self.series]
            rows.append(row)
        return format_table(headers, rows, title=f"{self.trace}: {metric}")

    def final_values(self, metric: str) -> Dict[str, float]:
        """Metric value at the last sweep point, per protocol."""
        return {p: series[metric][-1] for p, series in self.series.items()}

    def mean_values(self, metric: str) -> Dict[str, float]:
        """Metric averaged over the sweep, per protocol (for shape checks)."""
        return {
            p: sum(series[metric]) / len(series[metric])
            for p, series in self.series.items()
        }

    def as_dict(self) -> Dict[str, object]:
        """JSON-shaped export: series plus per-point run provenance."""
        return {
            "trace": self.trace,
            "parameter": self.parameter,
            "values": list(self.values),
            "series": {p: dict(m) for p, m in self.series.items()},
            "provenance": {p: list(v) for p, v in self.provenance.items()},
        }


def memory_sweep(
    trace: Trace,
    profile: TraceProfile,
    *,
    memories_kb: Sequence[float] = MEMORY_SWEEP_KB,
    rate: float = 500.0,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seed: int = 0,
) -> SweepResult:
    """Fig. 11/12: the four metrics vs per-node memory (paper kB units)."""
    result = SweepResult(
        trace=trace.name, parameter="memory_kb", values=tuple(memories_kb)
    )
    for name in protocols:
        for mem in memories_kb:
            point = run_point(
                trace, profile, name, memory_kb=mem, rate=rate, seed=seed
            )
            result.add(name, point.metrics)
    return result


def rate_sweep(
    trace: Trace,
    profile: TraceProfile,
    *,
    rates: Sequence[float] = RATE_SWEEP,
    memory_kb: float = 2000.0,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seed: int = 0,
) -> SweepResult:
    """Fig. 13/14: the four metrics vs packet generation rate."""
    result = SweepResult(trace=trace.name, parameter="rate", values=tuple(rates))
    for name in protocols:
        for rate in rates:
            point = run_point(
                trace, profile, name, memory_kb=memory_kb, rate=rate, seed=seed
            )
            result.add(name, point.metrics)
    return result
