"""Resumable scenario runs: one durable run directory per sweep.

A *run directory* (see :class:`~repro.sim.checkpoint.RunDir`) makes a
scenario execution crash-safe end to end:

* the manifest pins the fully-resolved scenario and its content hash, so a
  resume can never silently continue a *different* experiment;
* every finished sweep point is committed as a framed
  ``points/<i>/result.ckpt`` the moment it completes — a later crash never
  re-runs it;
* the in-flight point checkpoints incrementally (serial engine: every N
  dispatched events via :class:`~repro.sim.checkpoint.SerialCheckpointer`;
  sharded engine: every epoch barrier via the coordinator's commit
  records), so even the interrupted point resumes mid-run;
* all recovery actions land in ``recovery.jsonl`` as ``executor.*``
  events.

:func:`run_resumable` is create-or-continue: pointed at a fresh directory
it runs the whole grid; pointed at a partial one it skips committed points
and restarts the rest from their newest checkpoints.  ``repro resume``
(and ``--run-dir`` on ``repro scenario run``) are thin CLI shims over
:func:`resume_run`.  Metrics are bit-identical to an uninterrupted run —
the regression gate (``repro db regress`` at zero tolerance) holds across
any kill/resume sequence.  See docs/reliability.md.
"""

from __future__ import annotations

import os
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.eval.experiment import ExperimentResult, execute_config
from repro.eval.runner import ProgressEvent, ProgressFn, SweepInterrupted
from repro.eval.scenario import ScenarioResult, ScenarioSpec
from repro.eval.sharded import execute_point_sharded
from repro.obs import events as event_types
from repro.obs.registry import MetricsRegistry
from repro.sim.checkpoint import (
    DEFAULT_EVERY_EVENTS,
    CheckpointError,
    ExecutionInterrupted,
    InterruptFlag,
    RunDir,
    SerialCheckpointer,
)
from repro.store.db import content_hash

__all__ = [
    "MANIFEST_VERSION",
    "create_run",
    "open_run",
    "resume_run",
    "run_resumable",
]

MANIFEST_VERSION = 1


def create_run(
    path: Union[str, Path],
    spec: ScenarioSpec,
    *,
    shards: Optional[int] = None,
    every_events: int = DEFAULT_EVERY_EVENTS,
) -> RunDir:
    """Create a run directory for ``spec``; refuses to clobber another run.

    The manifest stores the *normalized* scenario (``as_dict`` round-trip)
    plus its content hash; :func:`open_run` re-hashes on load so a resume
    against an edited or corrupted manifest fails loudly instead of
    continuing the wrong experiment.
    """
    rd = RunDir(path)
    scenario = spec.validate().as_dict()
    if rd.exists():
        existing = rd.read_manifest()
        if existing.get("content_hash") != content_hash(scenario):
            raise CheckpointError(
                f"{rd.path} already holds a different scenario "
                f"(hash {existing.get('content_hash')!r}); refusing to reuse it"
            )
        return rd
    manifest = {
        "version": MANIFEST_VERSION,
        "kind": "scenario-run",
        "scenario": scenario,
        "content_hash": content_hash(scenario),
        "shards": shards,
        "every_events": int(every_events),
    }
    return RunDir.create(path, manifest)


def open_run(
    path: Union[str, Path],
) -> Tuple[RunDir, ScenarioSpec, Optional[int], int]:
    """Open an existing run directory, verifying its manifest hash.

    Returns ``(run_dir, spec, shards, every_events)``.
    """
    rd = RunDir(path)
    manifest = rd.read_manifest()
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise CheckpointError(
            f"{rd.path}: unsupported run-directory version {version!r} "
            f"(this package writes {MANIFEST_VERSION})"
        )
    scenario = manifest.get("scenario")
    if not isinstance(scenario, Mapping):
        raise CheckpointError(f"{rd.path}: manifest has no scenario block")
    spec = ScenarioSpec.from_dict(scenario)
    declared = manifest.get("content_hash")
    actual = content_hash(spec.as_dict())
    if declared != actual:
        raise CheckpointError(
            f"{rd.path}: manifest content hash mismatch (declared "
            f"{declared!r}, resolved scenario hashes to {actual!r}); "
            "the manifest was edited or corrupted — not resuming"
        )
    shards = manifest.get("shards")
    every = int(manifest.get("every_events") or DEFAULT_EVERY_EVENTS)
    return rd, spec, shards, every


def run_resumable(
    spec: ScenarioSpec,
    run_dir: RunDir,
    *,
    shards: Optional[int] = None,
    every_events: int = DEFAULT_EVERY_EVENTS,
    registry: Optional[MetricsRegistry] = None,
    barrier_timeout: Optional[float] = None,
    max_restarts: int = 2,
    restart_backoff: float = 0.5,
    injections: Optional[Mapping[int, Mapping[str, Any]]] = None,
    progress: Optional[ProgressFn] = None,
    flag: Optional[InterruptFlag] = None,
    on_result: Optional[Callable[[int, ExperimentResult], None]] = None,
    trace_cache: Optional[Dict[str, Any]] = None,
) -> Tuple[ScenarioResult, List[Optional[Dict[str, Any]]]]:
    """Run (or continue) every point of ``spec`` inside ``run_dir``.

    Committed points are skipped outright; the rest execute with
    checkpointing on — serial points through
    :meth:`Simulation.run_checkpointed`, sharded points (``shards >= 2``)
    through the supervised epoch-barrier coordinator, both resuming from
    whatever checkpoints the directory already holds.

    A deferred SIGINT/SIGTERM flushes the in-flight point's state and
    raises :class:`~repro.eval.runner.SweepInterrupted` carrying the
    completed results (index-aligned, ``None`` for unfinished) so callers
    can record the partial sweep; re-invoking with the same directory
    finishes it.

    ``injections`` is the chaos hook: a per-point-index mapping with
    optional ``chaos_kill`` (``(shard, epoch)`` forwarded to the shard
    worker) and ``crash_after_saves`` (forwarded to the serial
    checkpointer) keys.  Production callers leave it ``None``.

    Job-level hooks (used by ``repro serve``, harmless elsewhere):

    * ``progress`` receives a :class:`~repro.eval.runner.ProgressEvent`
      as each point starts and finishes.  Points restored from a committed
      ``result.ckpt`` emit a single ``finished`` event with
      ``seconds=None`` so consumers can count them without re-timing them.
    * ``flag`` supplies an externally-owned
      :class:`~repro.sim.checkpoint.InterruptFlag`; setting its
      ``triggered`` attribute from another thread cancels the run at the
      next checkpoint tick (in-flight state flushed, the usual
      :class:`SweepInterrupted` raised).  Default: a fresh flag wired to
      SIGINT/SIGTERM (signal handlers only install on the main thread).
    * ``on_result`` is called with ``(index, result)`` right after a
      point's ``result.ckpt`` commits — metrics stream out as they land
      instead of when the whole grid finishes.
    * ``trace_cache`` (keyed by trace-spec key) shares materialized traces
      across calls, so a long-running server rebuilds each trace once.
    """
    effective_shards = shards if shards is not None else spec.shards
    profile, tspec, materialized = spec.resolve_trace()
    entries = spec.entries(profile, tspec)
    recovery = run_dir.recovery_log(registry)
    injections = dict(injections or {})
    plan_cache: Dict[int, Any] = {}
    trace = None
    points = [point for _, point, _ in entries]
    results: List[Optional[ExperimentResult]] = [None] * len(entries)
    infos: List[Optional[Dict[str, Any]]] = [None] * len(entries)
    total = len(entries)
    pid = os.getpid()

    def emit(kind: str, i: int, point: Any, seconds: Optional[float]) -> None:
        if progress is None:
            return
        try:
            progress(ProgressEvent(
                kind=kind, index=i, total=total, protocol=point.protocol,
                memory_kb=point.memory_kb, rate=point.rate, seed=point.seed,
                seconds=seconds, pid=pid,
            ))
        except Exception:  # telemetry must never break the run
            pass

    with (flag if flag is not None else InterruptFlag()) as flag:
        for i, (_tspec, point, config) in enumerate(entries):
            cached = run_dir.load_result(i)
            if cached is not None:
                results[i] = cached["result"]
                infos[i] = cached.get("info")
                recovery.emit(
                    event_types.EXECUTOR_RESUME, kind="point",
                    index=i, protocol=point.protocol,
                )
                emit("finished", i, point, None)
                if on_result is not None:
                    on_result(i, cached["result"])
                continue
            if flag.triggered:
                recovery.emit(
                    event_types.EXECUTOR_INTERRUPT, kind="between-points",
                    index=i, signum=flag.signum,
                )
                raise SweepInterrupted(results)
            if trace is None:
                if trace_cache is not None:
                    trace = trace_cache.get(tspec.key)
                if trace is None:
                    trace = materialized.get(tspec.key)
                if trace is None:
                    trace = tspec.materialize()
                if trace_cache is not None:
                    trace_cache.setdefault(tspec.key, trace)
            inj = dict(injections.get(i) or {})
            point_dir = run_dir.point_dir(i)
            checkpointer = SerialCheckpointer(
                point_dir / "serial",
                every_events=every_events,
                flag=flag,
                recovery=recovery,
                crash_after_saves=inj.get("crash_after_saves"),
            )
            emit("started", i, point, None)
            t0 = perf_counter()
            try:
                if effective_shards is not None and effective_shards >= 2:
                    result, info = execute_point_sharded(
                        trace, point, config,
                        shards=effective_shards,
                        plan_cache=plan_cache,
                        checkpoint_dir=point_dir,
                        recovery=recovery,
                        barrier_timeout=barrier_timeout,
                        max_restarts=max_restarts,
                        restart_backoff=restart_backoff,
                        chaos_kill=inj.get("chaos_kill"),
                        serial_checkpointer=checkpointer,
                    )
                else:
                    result = execute_config(
                        trace, point.protocol, config,
                        memory_kb=point.memory_kb,
                        rate=point.rate,
                        seed=point.seed,
                        protocol_kwargs=point.protocol_kwargs,
                        scenario=point.scenario,
                        checkpointer=checkpointer,
                    )
                    info = {"execution": {"mode": "serial"}}
            except ExecutionInterrupted:
                # the in-flight point's state is already flushed; surface
                # the completed prefix so the caller can record it
                raise SweepInterrupted(results) from None
            run_dir.write_result(i, {"index": i, "result": result, "info": info})
            results[i] = result
            infos[i] = info
            emit("finished", i, point, perf_counter() - t0)
            if on_result is not None:
                on_result(i, result)
    return (
        ScenarioResult(spec=spec, points=points, results=list(results)),
        infos,
    )


def resume_run(
    path: Union[str, Path],
    *,
    registry: Optional[MetricsRegistry] = None,
    barrier_timeout: Optional[float] = None,
    max_restarts: int = 2,
    restart_backoff: float = 0.5,
) -> Tuple[ScenarioResult, List[Optional[Dict[str, Any]]], ScenarioSpec]:
    """Continue the run in ``path`` from its last complete checkpoints.

    The scenario, shard count and checkpoint cadence all come from the
    manifest, so a resume cannot drift from the original invocation.
    """
    rd, spec, shards, every = open_run(path)
    result, infos = run_resumable(
        spec, rd,
        shards=shards,
        every_events=every,
        registry=registry,
        barrier_timeout=barrier_timeout,
        max_restarts=max_restarts,
        restart_backoff=restart_backoff,
    )
    return result, infos, spec
