"""Experiment harness: configs, runners, sweeps and extension evaluations."""

from repro.eval.config import (
    MEMORY_SWEEP_KB,
    OVERLOAD_RATES,
    RATE_SWEEP,
    TraceProfile,
    full_scale,
    profile_for_trace,
    trace_profile,
)
from repro.eval.confidence import MetricCI, confidence_interval, run_with_confidence
from repro.eval.coverage import CoveragePoint, table_coverage_series
from repro.eval.deployment import LIBRARY, DeploymentResult, run_deployment
from repro.eval.experiment import ExperimentResult, run_matrix, run_point
from repro.eval.extensions import (
    DeadEndRow,
    LoadBalanceRow,
    LoopRow,
    deadend_experiment,
    deadend_trace,
    loadbalance_experiment,
    loop_experiment,
)
from repro.eval.runner import (
    PointSpec,
    TraceSpec,
    parse_jobs,
    run_point_specs,
    run_points,
)
from repro.eval.scenario import (
    ProtocolSpec,
    ScenarioResult,
    ScenarioSpec,
    ScenarioTrace,
    SweepSpec,
    extract_scenarios,
    load_scenario,
    preset_names,
    preset_scenario,
    run_scenario,
)
from repro.eval.sweeps import SweepResult, memory_sweep, rate_sweep

__all__ = [
    "ProtocolSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioTrace",
    "SweepSpec",
    "extract_scenarios",
    "load_scenario",
    "preset_names",
    "preset_scenario",
    "profile_for_trace",
    "run_scenario",
    "PointSpec",
    "TraceSpec",
    "parse_jobs",
    "run_point_specs",
    "run_points",
    "MEMORY_SWEEP_KB",
    "OVERLOAD_RATES",
    "RATE_SWEEP",
    "TraceProfile",
    "full_scale",
    "trace_profile",
    "MetricCI",
    "confidence_interval",
    "run_with_confidence",
    "CoveragePoint",
    "table_coverage_series",
    "LIBRARY",
    "DeploymentResult",
    "run_deployment",
    "ExperimentResult",
    "run_matrix",
    "run_point",
    "DeadEndRow",
    "LoadBalanceRow",
    "LoopRow",
    "deadend_experiment",
    "deadend_trace",
    "loadbalance_experiment",
    "loop_experiment",
    "SweepResult",
    "memory_sweep",
    "rate_sweep",
]
