"""Executor-level chaos harness: inject failures, assert recovery + parity.

``repro resilience`` degrades the *simulated* DTN (landmark outages, node
churn — see :mod:`repro.sim.faults`); this module degrades the *executor*
itself: shard workers are killed mid-epoch, serial runs crash between
checkpoints, checkpoint files are truncated, the experiment store's write
lock is held by a rival connection.  A chaos run passes only if the
execution plane recovers *and* the recovered metrics are bit-identical to
an undisturbed baseline — the executor analogue of the resilience gate.

The injection plan is a :class:`ChaosSpec`.  Every knob is deterministic:
an explicit plan replays exactly, and the ``seed`` derives a concrete plan
for whatever grid/shard shape it meets, so CI can run ``repro chaos
--seed k`` without hand-picking targets.  See docs/reliability.md.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.eval.resume import create_run, resume_run, run_resumable
from repro.eval.scenario import ScenarioResult, ScenarioSpec
from repro.obs import events as event_types
from repro.sim.checkpoint import SimulatedCrash

__all__ = [
    "ChaosReport",
    "ChaosSpec",
    "chaos_summary_lines",
    "hold_store_lock",
    "run_chaos",
    "truncate_newest_checkpoint",
]


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic executor-failure injection plan.

    ``point`` indexes the scenario grid (grid order); ``kill_shard`` is a
    ``(shard, epoch)`` pair making that worker die abruptly at epoch
    ``epoch`` (sharded runs only); ``interrupt_after`` crashes the serial
    engine right after its n-th checkpoint commit; ``truncate_checkpoint``
    additionally corrupts the newest checkpoint before resuming (the
    resume must fall back to its predecessor, so pair it with
    ``interrupt_after >= 2``); ``hold_store_lock_ms`` has a rival
    connection hold the SQLite write lock while results are recorded.
    Unset knobs are derived from ``seed`` by :meth:`resolve`.
    """

    seed: int = 0
    point: Optional[int] = None
    kill_shard: Optional[Tuple[int, int]] = None
    interrupt_after: Optional[int] = None
    truncate_checkpoint: bool = False
    hold_store_lock_ms: Optional[int] = None

    def resolve(self, n_points: int, shards: Optional[int]) -> "ChaosSpec":
        """Pin every unset knob deterministically from the seed."""
        if n_points <= 0:
            raise ValueError("cannot resolve a chaos plan for an empty grid")
        point = self.point if self.point is not None else self.seed % n_points
        kill = self.kill_shard
        interrupt = self.interrupt_after
        if kill is None and interrupt is None:
            if shards is not None and shards >= 2:
                kill = (self.seed % shards, 1 + self.seed % 2)
            else:
                interrupt = 2 if self.truncate_checkpoint else 1 + self.seed % 2
        return dataclasses.replace(
            self, point=point, kill_shard=kill, interrupt_after=interrupt
        )

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"seed": self.seed, "point": self.point}
        if self.kill_shard is not None:
            out["kill_shard"] = list(self.kill_shard)
        if self.interrupt_after is not None:
            out["interrupt_after"] = self.interrupt_after
        if self.truncate_checkpoint:
            out["truncate_checkpoint"] = True
        if self.hold_store_lock_ms is not None:
            out["hold_store_lock_ms"] = self.hold_store_lock_ms
        return out


@dataclass
class ChaosReport:
    """Outcome of one chaos run: did we recover, and to the same numbers?"""

    ok: bool
    plan: Dict[str, Any]
    n_points: int
    resumed: bool
    recovery_events: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": "chaos",
            "ok": self.ok,
            "plan": dict(self.plan),
            "n_points": self.n_points,
            "resumed": self.resumed,
            "recovery_events": dict(self.recovery_events),
            "mismatches": list(self.mismatches),
            "notes": list(self.notes),
        }


def truncate_newest_checkpoint(point_dir: Union[str, Path]) -> Optional[Path]:
    """Corrupt the newest serial checkpoint under ``point_dir`` (chop it in
    half), returning its path — the resume must skip it and fall back."""
    paths = sorted((Path(point_dir) / "serial").glob("serial-*.ckpt"))
    if not paths:
        return None
    victim = paths[-1]
    size = victim.stat().st_size
    with open(victim, "r+b") as fh:
        fh.truncate(max(1, size // 2))
    return victim


def hold_store_lock(db_path: Union[str, Path], hold_ms: int) -> threading.Thread:
    """Grab the SQLite write lock on ``db_path`` from a rival connection and
    hold it for ``hold_ms`` milliseconds (in a background thread).

    Returns once the lock is actually held, so a recording attempt started
    right after this call is guaranteed to contend — exercising the
    store's ``busy_timeout``/retry hardening.
    """
    import sqlite3

    acquired = threading.Event()

    def holder() -> None:
        conn = sqlite3.connect(str(db_path))
        try:
            conn.execute("BEGIN IMMEDIATE")
            acquired.set()
            time.sleep(hold_ms / 1000.0)
            conn.execute("COMMIT")
        finally:
            acquired.set()  # never leave the caller waiting, even on error
            conn.close()

    thread = threading.Thread(target=holder, name="repro-chaos-lock", daemon=True)
    thread.start()
    acquired.wait(timeout=10.0)
    return thread


def _metric_values(summary: Any) -> Dict[str, float]:
    """The numeric metric values of one summary — the parity contract.

    Provenance and execution blocks legitimately differ between a clean
    run and a recovered one (restart counters, resume markers); the metric
    *values* must not.
    """
    out: Dict[str, float] = {}
    for key, value in summary.as_dict().items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[str(key)] = float(value)
    return out


def run_chaos(
    spec: ScenarioSpec,
    chaos: ChaosSpec,
    run_dir: Union[str, Path],
    *,
    shards: Optional[int] = None,
    every_events: int = 50_000,
    baseline: Optional[ScenarioResult] = None,
    restart_backoff: float = 0.1,
) -> Tuple[ChaosReport, ScenarioResult]:
    """Run ``spec`` under the ``chaos`` injection plan and judge recovery.

    Three acts:

    1. an undisturbed baseline run (serial, or ``baseline`` if the caller
       already has one — metrics are execution-mode-invariant);
    2. the chaos run inside ``run_dir`` with the injection armed — a
       killed shard worker must be supervised back to life, a serial
       crash leaves the directory ready to resume (optionally with its
       newest checkpoint truncated first);
    3. if act 2 crashed, ``resume_run`` finishes the directory with the
       injection disarmed.

    The report is ``ok`` only if every point's metric values match the
    baseline exactly *and* the expected ``executor.*`` recovery events
    were emitted.  ``repro chaos`` exits non-zero otherwise.
    """
    effective_shards = shards if shards is not None else spec.shards
    plan = chaos.resolve(spec.n_points(), effective_shards)
    report = ChaosReport(
        ok=False, plan=plan.as_dict(), n_points=spec.n_points(), resumed=False
    )

    if baseline is None:
        from repro.eval.scenario import run_scenario

        baseline = run_scenario(spec)
    base_values = [_metric_values(r.metrics) for r in baseline.results]

    rd = create_run(run_dir, spec, shards=effective_shards,
                    every_events=every_events)
    injections: Dict[int, Dict[str, Any]] = {plan.point: {}}
    if effective_shards is not None and effective_shards >= 2:
        injections[plan.point]["chaos_kill"] = plan.kill_shard
    else:
        injections[plan.point]["crash_after_saves"] = plan.interrupt_after

    try:
        result, _ = run_resumable(
            spec, rd,
            shards=effective_shards,
            every_events=every_events,
            restart_backoff=restart_backoff,
            injections=injections,
        )
        report.notes.append("chaos run completed in one pass (in-run recovery)")
    except SimulatedCrash as exc:
        report.notes.append(f"injected crash fired: {exc}")
        if plan.truncate_checkpoint:
            victim = truncate_newest_checkpoint(rd.point_dir(plan.point))
            report.notes.append(
                f"truncated newest checkpoint: {victim.name if victim else 'none found'}"
            )
        result, _, _ = resume_run(rd.path, restart_backoff=restart_backoff)
        report.resumed = True

    # -- judge ---------------------------------------------------------------
    for i, (base, got) in enumerate(
        zip(base_values, (_metric_values(r.metrics) for r in result.results))
    ):
        if base != got:
            diffs = sorted(
                k for k in set(base) | set(got) if base.get(k) != got.get(k)
            )
            report.mismatches.append(f"point {i}: metrics differ on {diffs}")

    counts: Dict[str, int] = {}
    for record in rd.recovery_log().records():
        counts[record["event"]] = counts.get(record["event"], 0) + 1
    report.recovery_events = counts

    recovered = True
    if injections[plan.point].get("chaos_kill") is not None:
        if not counts.get(event_types.EXECUTOR_WORKER_RESTART):
            report.mismatches.append(
                "no executor.worker_restart event — the killed shard worker "
                "was never supervised back"
            )
            recovered = False
    else:
        if not counts.get(event_types.EXECUTOR_RESUME):
            report.mismatches.append(
                "no executor.resume event — the crashed run never restored "
                "from its checkpoint"
            )
            recovered = False

    report.ok = recovered and not report.mismatches
    return report, result


def chaos_summary_lines(report: ChaosReport) -> List[str]:
    """Human-readable report body for the CLI."""
    lines = [
        f"chaos plan: {report.plan}",
        f"points: {report.n_points}  resumed: {report.resumed}",
    ]
    if report.recovery_events:
        lines.append("recovery events:")
        for name, count in sorted(report.recovery_events.items()):
            lines.append(f"  {name}: {count}")
    for note in report.notes:
        lines.append(f"note: {note}")
    for mismatch in report.mismatches:
        lines.append(f"MISMATCH: {mismatch}")
    lines.append("chaos: OK (recovered, metrics bit-identical)"
                 if report.ok else "chaos: FAILED")
    return lines
