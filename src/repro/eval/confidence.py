"""Multi-seed experiment statistics with 95 % confidence intervals.

The paper sets "the confidence interval to 95 %" for its experiments.  This
module runs an experiment point across several workload seeds and reports
mean ± half-width of the Student-t confidence interval for each metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np
from scipy import stats as sp_stats

from repro.eval.config import TraceProfile
from repro.eval.runner import PointSpec, TraceSpec, run_points
from repro.mobility.trace import Trace
from repro.utils.validation import require_in_range, require_positive


@dataclass(frozen=True)
class MetricCI:
    """Mean and symmetric confidence half-width of one metric."""

    mean: float
    half_width: float
    n: int
    level: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> MetricCI:
    """Student-t confidence interval for the mean of ``samples``."""
    require_in_range("level", level, 0.0, 1.0, inclusive_low=False, inclusive_high=False)
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    mean = float(arr.mean())
    if arr.size == 1:
        return MetricCI(mean=mean, half_width=0.0, n=1, level=level)
    sem = float(arr.std(ddof=1)) / np.sqrt(arr.size)
    t = float(sp_stats.t.ppf(0.5 + level / 2.0, df=arr.size - 1))
    return MetricCI(mean=mean, half_width=t * sem, n=int(arr.size), level=level)


METRICS = ("success_rate", "avg_delay", "forwarding_ops", "total_cost")


def run_with_confidence(
    trace: Trace,
    profile: TraceProfile,
    protocol_name: str,
    *,
    seeds: Sequence[int] = (1, 2, 3),
    memory_kb: float = 2000.0,
    rate: float = 500.0,
    level: float = 0.95,
    jobs: Union[int, str, None] = 1,
    trace_spec: Optional[TraceSpec] = None,
) -> Dict[str, MetricCI]:
    """Run one experiment point over ``seeds``; CI per metric.

    Only the workload seed varies (the trace is fixed), matching the paper's
    repeated-runs methodology.  ``jobs > 1`` fans the seeds out over worker
    processes; the per-seed results (and hence the intervals) are
    bit-identical to a serial run.
    """
    require_positive("n seeds", len(seeds))
    points = [
        PointSpec(protocol=protocol_name, memory_kb=memory_kb, rate=rate, seed=seed)
        for seed in seeds
    ]
    results = run_points(trace, profile, points, jobs=jobs, trace_spec=trace_spec)
    samples: Dict[str, List[float]] = {m: [] for m in METRICS}
    for outcome in results:
        res = outcome.metrics
        samples["success_rate"].append(res.success_rate)
        samples["avg_delay"].append(res.avg_delay)
        samples["forwarding_ops"].append(float(res.forwarding_ops))
        samples["total_cost"].append(float(res.total_cost))
    return {m: confidence_interval(vals, level=level) for m, vals in samples.items()}
