"""Baseline routing protocols and the protocol registry.

The five paper baselines (Section V-A.1) plus two bracketing references.
:func:`make_protocol` builds a fresh protocol instance by name — experiment
configs refer to protocols by these names.

Each registry entry carries the protocol's constructor *and* its config
surface: either a config dataclass (DTN-FLOW's :class:`DTNFlowConfig`) or
the constructor's keyword parameters.  :func:`make_protocol` validates
every keyword against that surface, so a typo in a scenario manifest fails
loudly with the protocol's name and the accepted parameters, and
:func:`make_protocol_from_spec` builds a protocol straight from a scenario
``{"name": ..., "config": {...}}`` block.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.baselines.base import UtilityProtocol
from repro.baselines.extras import DirectDeliveryProtocol, EpidemicProtocol
from repro.baselines.geocomm import GeoCommProtocol
from repro.baselines.per import PERProtocol
from repro.baselines.pgr import PGRProtocol
from repro.baselines.prophet import ProphetProtocol
from repro.baselines.simbet import SimBetProtocol
from repro.baselines.spraywait import SprayAndWaitProtocol
from repro.core.router import DTNFlowConfig, DTNFlowProtocol
from repro.sim.engine import RoutingProtocol


@dataclass(frozen=True)
class ProtocolEntry:
    """One registry row: a constructor plus its configuration surface."""

    factory: Callable[..., RoutingProtocol]
    #: config dataclass consumed by the constructor's ``config=`` parameter
    #: (None = the constructor takes plain keyword arguments)
    config_cls: Optional[type] = None

    def param_names(self) -> List[str]:
        """The keyword parameters this protocol accepts."""
        if self.config_cls is not None:
            return sorted(
                ["config"] + [f.name for f in dataclasses.fields(self.config_cls)]
            )
        sig = inspect.signature(self.factory.__init__)
        return sorted(
            p.name
            for p in sig.parameters.values()
            if p.name != "self"
            and p.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        )


_REGISTRY: Dict[str, ProtocolEntry] = {
    "DTN-FLOW": ProtocolEntry(DTNFlowProtocol, DTNFlowConfig),
    "SimBet": ProtocolEntry(SimBetProtocol),
    "PROPHET": ProtocolEntry(ProphetProtocol),
    "PGR": ProtocolEntry(PGRProtocol),
    "GeoComm": ProtocolEntry(GeoCommProtocol),
    "PER": ProtocolEntry(PERProtocol),
    "Direct": ProtocolEntry(DirectDeliveryProtocol),
    "Epidemic": ProtocolEntry(EpidemicProtocol),
    "SprayWait": ProtocolEntry(SprayAndWaitProtocol),
}

#: the six methods compared throughout Section V, in the paper's order
PAPER_PROTOCOLS = ("DTN-FLOW", "SimBet", "PROPHET", "PGR", "GeoComm", "PER")


def protocol_names() -> List[str]:
    """All registered protocol names."""
    return sorted(_REGISTRY)


def protocol_entry(name: str) -> ProtocolEntry:
    """The registry entry for ``name`` (ValueError for unknown protocols)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; available: {protocol_names()}"
        ) from None


def protocol_config_fields(name: str) -> List[str]:
    """The keyword parameters ``make_protocol(name, ...)`` accepts."""
    return protocol_entry(name).param_names()


def _build_dataclass(cls: type, values: Mapping[str, Any]):
    """Build a config dataclass, recursing into dataclass-typed fields so a
    JSON scenario can spell e.g. ``{"scheduler": {"priority": "fifo"}}``."""
    by_name = {f.name: f for f in dataclasses.fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in values.items():
        f = by_name[key]
        if isinstance(value, Mapping) and dataclasses.is_dataclass(f.type):
            value = _build_dataclass(f.type, value)
        elif isinstance(value, Mapping):
            # dataclass fields declared via string annotations: resolve from
            # the default factory's product
            default = (
                f.default_factory()
                if f.default_factory is not dataclasses.MISSING  # type: ignore[misc]
                else f.default
            )
            if dataclasses.is_dataclass(default) and not isinstance(default, type):
                value = _build_dataclass(type(default), value)
        kwargs[key] = value
    return cls(**kwargs)


def make_protocol(name: str, **kwargs) -> RoutingProtocol:
    """Instantiate a registered protocol by name (fresh state every call).

    Keyword arguments are validated against the protocol's configuration
    surface; unknown keywords raise a ``ValueError`` naming the protocol
    and the accepted parameters (so scenario typos fail loudly).
    """
    entry = protocol_entry(name)
    accepted = set(entry.param_names())
    unknown = sorted(set(kwargs) - accepted)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for protocol {name!r}: {unknown}; "
            f"accepted: {sorted(accepted)}"
        )
    if entry.config_cls is not None and kwargs:
        if "config" in kwargs:
            if len(kwargs) > 1:
                extra = sorted(set(kwargs) - {"config"})
                raise ValueError(
                    f"protocol {name!r}: pass either a prebuilt config= or "
                    f"individual fields, not both (got config= plus {extra})"
                )
            return entry.factory(config=kwargs["config"])
        return entry.factory(config=_build_dataclass(entry.config_cls, kwargs))
    return entry.factory(**kwargs)


def make_protocol_from_spec(spec: Mapping[str, Any]) -> RoutingProtocol:
    """Build a protocol from a scenario ``{"name": ..., "config": {...}}``."""
    if "name" not in spec:
        raise ValueError(f"protocol spec needs a 'name' key, got {dict(spec)!r}")
    unknown = sorted(set(spec) - {"name", "config"})
    if unknown:
        raise ValueError(
            f"unknown key(s) in protocol spec: {unknown}; allowed: ['config', 'name']"
        )
    config = spec.get("config") or {}
    if not isinstance(config, Mapping):
        raise ValueError(
            f"protocol 'config' must be a mapping, got {type(config).__name__}"
        )
    return make_protocol(str(spec["name"]), **dict(config))


__all__ = [
    "UtilityProtocol",
    "DirectDeliveryProtocol",
    "EpidemicProtocol",
    "GeoCommProtocol",
    "PERProtocol",
    "PGRProtocol",
    "ProphetProtocol",
    "SimBetProtocol",
    "SprayAndWaitProtocol",
    "DTNFlowProtocol",
    "DTNFlowConfig",
    "PAPER_PROTOCOLS",
    "ProtocolEntry",
    "protocol_entry",
    "protocol_config_fields",
    "protocol_names",
    "make_protocol",
    "make_protocol_from_spec",
]
