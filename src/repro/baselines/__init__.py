"""Baseline routing protocols and the protocol registry.

The five paper baselines (Section V-A.1) plus two bracketing references.
:func:`make_protocol` builds a fresh protocol instance by name — experiment
configs refer to protocols by these names.
"""

from typing import Callable, Dict, List

from repro.baselines.base import UtilityProtocol
from repro.baselines.extras import DirectDeliveryProtocol, EpidemicProtocol
from repro.baselines.geocomm import GeoCommProtocol
from repro.baselines.per import PERProtocol
from repro.baselines.pgr import PGRProtocol
from repro.baselines.prophet import ProphetProtocol
from repro.baselines.simbet import SimBetProtocol
from repro.baselines.spraywait import SprayAndWaitProtocol
from repro.core.router import DTNFlowConfig, DTNFlowProtocol
from repro.sim.engine import RoutingProtocol

_REGISTRY: Dict[str, Callable[[], RoutingProtocol]] = {
    "DTN-FLOW": DTNFlowProtocol,
    "SimBet": SimBetProtocol,
    "PROPHET": ProphetProtocol,
    "PGR": PGRProtocol,
    "GeoComm": GeoCommProtocol,
    "PER": PERProtocol,
    "Direct": DirectDeliveryProtocol,
    "Epidemic": EpidemicProtocol,
    "SprayWait": SprayAndWaitProtocol,
}

#: the six methods compared throughout Section V, in the paper's order
PAPER_PROTOCOLS = ("DTN-FLOW", "SimBet", "PROPHET", "PGR", "GeoComm", "PER")


def protocol_names() -> List[str]:
    """All registered protocol names."""
    return sorted(_REGISTRY)


def make_protocol(name: str, **kwargs) -> RoutingProtocol:
    """Instantiate a registered protocol by name (fresh state every call)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; available: {protocol_names()}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "UtilityProtocol",
    "DirectDeliveryProtocol",
    "EpidemicProtocol",
    "GeoCommProtocol",
    "PERProtocol",
    "PGRProtocol",
    "ProphetProtocol",
    "SimBetProtocol",
    "SprayAndWaitProtocol",
    "DTNFlowProtocol",
    "DTNFlowConfig",
    "PAPER_PROTOCOLS",
    "protocol_names",
    "make_protocol",
]
