"""Spray-and-Wait (Spyropoulos et al., WDTN 2005), landmark form.

A classic bounded-replication reference outside the paper's comparison set
(which is single-copy), useful to bracket the single-copy protocols: each
packet starts with ``n_copies`` logical copies; *binary* spraying gives half
of a carrier's copies to each encountered node until one copy remains, after
which the carrier waits to deliver directly at the destination landmark.

The copy budget is tracked in ``packet.meta["sw_copies"]``; replicas share
the packet id, so the engine's delivered/dropped dedupe machinery applies.
"""

from __future__ import annotations

import copy

from repro.sim.engine import RoutingProtocol, World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.sim.packets import Packet
from repro.utils.validation import require_positive

META_COPIES = "sw_copies"


class SprayAndWaitProtocol(RoutingProtocol):
    """Binary Spray-and-Wait with landmark destinations."""

    name = "SprayWait"
    uses_contacts = True

    def __init__(self, *, n_copies: int = 8) -> None:
        require_positive("n_copies", n_copies)
        self.n_copies = int(n_copies)

    # -- helpers --------------------------------------------------------------------
    def _copies(self, p: Packet) -> int:
        return int(p.meta.get(META_COPIES, self.n_copies))

    def _split_to(self, world: World, packet: Packet, holder_buffer, target_buffer) -> bool:
        """Binary split: half the copies move to the target as a replica."""
        copies = self._copies(packet)
        if copies < 2:
            return False
        if not target_buffer.can_accept(packet):
            return False
        give = copies // 2
        clone = copy.copy(packet)
        clone.meta = dict(packet.meta)
        clone.visited = list(packet.visited)
        clone.meta[META_COPIES] = give
        packet.meta[META_COPIES] = copies - give
        if target_buffer.add(clone):
            world.metrics.on_forward()
            return True
        return False

    # -- hooks -------------------------------------------------------------------------
    def on_packet_generated(
        self, world: World, station: LandmarkStation, packet: Packet, t: float
    ) -> None:
        packet.meta[META_COPIES] = self.n_copies
        self._spray_from_station(world, station)

    def _spray_from_station(self, world: World, station: LandmarkStation) -> None:
        nodes = world.connected_nodes(station)
        if not nodes:
            return
        for p in station.buffer.packets():
            for nd in nodes:
                if p.pid in nd.buffer:
                    continue
                if self._copies(p) >= 2:
                    self._split_to(world, p, station.buffer, nd.buffer)
                else:
                    # last copy: move it onto a carrier outright
                    if world.station_to_node(station, nd, p):
                        break

    def on_visit_start(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        # delivery at the destination landmark is handled by the engine;
        # the station sprays its queued packets onto the arriving carrier
        self._spray_from_station(world, station)

    def on_contact(
        self, world: World, a: MobileNode, b: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        for holder, peer in ((a, b), (b, a)):
            for p in holder.buffer.packets():
                if not p.in_flight:
                    continue
                if p.pid in peer.buffer:
                    continue
                self._split_to(world, p, holder.buffer, peer.buffer)
