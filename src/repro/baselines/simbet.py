"""SimBet adapted to landmark destinations (Daly & Haahr, MobiHoc 2007).

SimBet ranks carriers by a convex combination of *similarity* to the
destination and *betweenness centrality*.  In the landmark adaptation (the
paper: "the similarity is derived from the frequency that the node visits
the landmark"):

* ``sim(n, L)`` — node ``n``'s visit frequency to landmark ``L``;
* ``bet(n)``   — ego betweenness of ``n`` in the node-contact graph: a node
  bridging contacts that do not meet each other scores high.

As in the original protocol the two components are combined *pairwise*: when
comparing holder ``a`` against candidate ``b`` for destination ``L``,

    SimUtil_b = sim_b / (sim_a + sim_b),   BetUtil_b = bet_b / (bet_a + bet_b)
    SimBetUtil_b = alpha * SimUtil_b + (1 - alpha) * BetUtil_b

and the packet moves when ``SimBetUtil_b > SimBetUtil_a``.  Because the
pairwise form needs both endpoints, :meth:`utility` (used for station
pushes and generic ranking) blends the node's *absolute* similarity and
normalised centrality; the node-node comparison overrides the base-class
hook with the faithful pairwise rule.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Set

from repro.baselines.base import UtilityProtocol
from repro.sim.engine import World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.utils.validation import require_in_range


def ego_betweenness(neighbors: Set[int], adjacency: Dict[int, Set[int]]) -> float:
    """Ego betweenness: count of neighbour pairs connected only through ego.

    For each unordered pair of ego's neighbours that are not adjacent to
    each other, ego lies on their only known path; the score is the number
    of such pairs (the standard ego-network betweenness used by SimBet,
    with unit weights).
    """
    ns = sorted(neighbors)
    score = 0.0
    for i, u in enumerate(ns):
        for v in ns[i + 1 :]:
            if v not in adjacency.get(u, ()):
                score += 1.0
    return score


class SimBetProtocol(UtilityProtocol):
    """SimBet with landmark destinations."""

    name = "SimBet"

    def __init__(self, *, alpha: float = 0.5, recompute_every: int = 10) -> None:
        require_in_range("alpha", alpha, 0.0, 1.0)
        self.alpha = alpha
        self.recompute_every = max(1, int(recompute_every))
        self._visits: Dict[int, Counter] = {}
        self._contacts: Dict[int, Set[int]] = {}
        #: each node's view of which of its contacts know each other,
        #: learned by exchanging contact lists at encounters
        self._known_adjacency: Dict[int, Dict[int, Set[int]]] = {}
        self._bet_cache: Dict[int, float] = {}
        self._contacts_since: Dict[int, int] = {}

    # -- learning ---------------------------------------------------------------
    def learn_visit(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._visits.setdefault(node.nid, Counter())[station.lid] += 1

    def learn_contact(self, world: World, a: MobileNode, b: MobileNode, t: float) -> None:
        for x, y in ((a.nid, b.nid), (b.nid, a.nid)):
            self._contacts.setdefault(x, set()).add(y)
            # x learns y's contact list (SimBet's exchange step)
            self._known_adjacency.setdefault(x, {})[y] = set(
                self._contacts.get(y, ())
            )
            self._contacts_since[x] = self._contacts_since.get(x, 0) + 1

    # -- components ------------------------------------------------------------------
    def similarity(self, nid: int, dest: int) -> float:
        return float(self._visits.get(nid, Counter()).get(dest, 0))

    def betweenness(self, nid: int) -> float:
        since = self._contacts_since.get(nid, 0)
        if nid not in self._bet_cache or since >= self.recompute_every:
            self._bet_cache[nid] = ego_betweenness(
                self._contacts.get(nid, set()), self._known_adjacency.get(nid, {})
            )
            self._contacts_since[nid] = 0
        return self._bet_cache[nid]

    def pairwise_utility(self, nid_a: int, nid_b: int, dest: int) -> float:
        """SimBetUtil of ``b`` against ``a`` (the paper's pairwise form)."""
        sim_a, sim_b = self.similarity(nid_a, dest), self.similarity(nid_b, dest)
        bet_a, bet_b = self.betweenness(nid_a), self.betweenness(nid_b)
        sim_util = sim_b / (sim_a + sim_b) if (sim_a + sim_b) > 0 else 0.5
        bet_util = bet_b / (bet_a + bet_b) if (bet_a + bet_b) > 0 else 0.5
        return self.alpha * sim_util + (1.0 - self.alpha) * bet_util

    # -- utility (absolute form, for station pushes) -----------------------------------
    def utility(self, world: World, node: MobileNode, dest: int, t: float) -> float:
        sim = self.similarity(node.nid, dest)
        bet = self.betweenness(node.nid)
        n = max(1, world.trace.n_nodes)
        max_pairs = (n - 1) * (n - 2) / 2.0
        bet_norm = bet / max_pairs if max_pairs > 0 else 0.0
        return self.alpha * sim + (1.0 - self.alpha) * bet_norm

    def _push_skip_sound(self, world: World, station: LandmarkStation) -> bool:
        # betweenness deliberately refreshes only every ``recompute_every``
        # contact-increments, and the counter resets *at call time* — so a
        # skipped call can shift a later refresh across a contact-graph
        # change.  Skipping is only sound when every incumbent's betweenness
        # would have been a pure cache hit anyway.
        cache = self._bet_cache
        since = self._contacts_since
        since_get = since.get
        limit = self.recompute_every
        for nd in world.connected_nodes(station):
            nid = nd.nid
            if nid not in cache or since_get(nid, 0) >= limit:
                return False
        return True

    def _compare_and_forward(
        self, world: World, holder: MobileNode, peer: MobileNode, t: float
    ) -> None:
        """Faithful pairwise SimBet exchange."""
        for p in holder.buffer.packets():
            u_peer = self.pairwise_utility(holder.nid, peer.nid, p.dst)
            if u_peer > 0.5 + self.forward_margin:
                world.node_to_node(holder, peer, p)

    def table_size(self, world: World, node: MobileNode) -> int:
        return max(1, len(self._visits.get(node.nid, ())))
