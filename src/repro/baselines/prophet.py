"""PROPHET adapted to landmark destinations (Lindgren et al., 2003).

The paper uses PROPHET to represent probabilistic routing: a node's
delivery predictability toward a landmark is updated on every encounter
with that landmark, aged over time, and (optionally) boosted transitively
through encounters with other nodes::

    encounter:    P(n,L) <- P(n,L) + (1 - P(n,L)) * P_init
    aging:        P(n,L) <- P(n,L) * gamma ** (dt / aging_unit)
    transitivity: P(a,L) <- max(P(a,L), P(a,b) * P(b,L) * beta)

Packets always flow toward nodes with higher predictability for their
destination landmark, which is the paper's "forwards packets greedily by
only considering meeting frequency" behaviour (high forwarding cost).
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import UtilityProtocol
from repro.mobility.trace import days
from repro.sim.engine import World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.utils.validation import require_in_range, require_positive


class _Predictability:
    """One node's aged predictability table (toward landmarks or nodes)."""

    __slots__ = ("p", "last_update", "p_init", "gamma", "aging_unit")

    def __init__(self, p_init: float, gamma: float, aging_unit: float) -> None:
        self.p: Dict[int, float] = {}
        self.last_update: Dict[int, float] = {}
        self.p_init = p_init
        self.gamma = gamma
        self.aging_unit = aging_unit

    def _aged(self, key: int, t: float) -> float:
        val = self.p.get(key, 0.0)
        if val == 0.0:
            return 0.0
        dt = max(0.0, t - self.last_update.get(key, t))
        return val * self.gamma ** (dt / self.aging_unit)

    def encounter(self, key: int, t: float) -> None:
        val = self._aged(key, t)
        self.p[key] = val + (1.0 - val) * self.p_init
        self.last_update[key] = t

    def boost(self, key: int, value: float, t: float) -> None:
        val = self._aged(key, t)
        if value > val:
            self.p[key] = value
            self.last_update[key] = t

    def get(self, key: int, t: float) -> float:
        return self._aged(key, t)

    def __len__(self) -> int:
        return len(self.p)


class ProphetProtocol(UtilityProtocol):
    """PROPHET with landmark destinations."""

    name = "PROPHET"

    def __init__(
        self,
        *,
        p_init: float = 0.75,
        gamma: float = 0.98,
        beta: float = 0.25,
        aging_unit: float = days(1.0) / 24.0,  # one hour
        transitivity: bool = False,
    ) -> None:
        # transitivity defaults off: the paper's adaptation "simply employs
        # the visiting records with landmarks to calculate the future meeting
        # probability" (Section V-A.1); enable it for full classic PROPHET.
        require_in_range("p_init", p_init, 0.0, 1.0, inclusive_low=False)
        require_in_range("gamma", gamma, 0.0, 1.0, inclusive_low=False)
        require_in_range("beta", beta, 0.0, 1.0)
        require_positive("aging_unit", aging_unit)
        self.p_init = p_init
        self.gamma = gamma
        self.beta = beta
        self.aging_unit = aging_unit
        self.transitivity = transitivity
        self._landmark_p: Dict[int, _Predictability] = {}
        self._node_p: Dict[int, _Predictability] = {}

    def _lm_table(self, nid: int) -> _Predictability:
        tab = self._landmark_p.get(nid)
        if tab is None:
            tab = _Predictability(self.p_init, self.gamma, self.aging_unit)
            self._landmark_p[nid] = tab
        return tab

    def _nd_table(self, nid: int) -> _Predictability:
        tab = self._node_p.get(nid)
        if tab is None:
            tab = _Predictability(self.p_init, self.gamma, self.aging_unit)
            self._node_p[nid] = tab
        return tab

    # -- learning ---------------------------------------------------------------
    def learn_visit(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._lm_table(node.nid).encounter(station.lid, t)

    def learn_contact(self, world: World, a: MobileNode, b: MobileNode, t: float) -> None:
        self._nd_table(a.nid).encounter(b.nid, t)
        self._nd_table(b.nid).encounter(a.nid, t)
        if not self.transitivity:
            return
        pa, pb = self._lm_table(a.nid), self._lm_table(b.nid)
        p_ab = self._nd_table(a.nid).get(b.nid, t)
        for lm in set(pa.p) | set(pb.p):
            pa.boost(lm, p_ab * pb.get(lm, t) * self.beta, t)
            pb.boost(lm, p_ab * pa.get(lm, t) * self.beta, t)

    # -- utility --------------------------------------------------------------------
    def utility(self, world: World, node: MobileNode, dest: int, t: float) -> float:
        return self._lm_table(node.nid).get(dest, t)

    def table_size(self, world: World, node: MobileNode) -> int:
        return max(1, len(self._lm_table(node.nid)))
