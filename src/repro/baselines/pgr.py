"""PGR — geographical routing by route prediction (Kurhinen & Janatuinen).

PGR "uses observed nodes' mobility pattern to predict nodes' future
movement" — it tries to predict a node's *entire upcoming route* (a sequence
of landmarks) and checks whether the destination lies on it.  The paper
notes this is its weakness: predicting a multi-landmark path compounds the
per-step prediction error, so PGR ends up with the lowest success rate (and,
because nodes look alike under this metric, the lowest forwarding cost).

Implementation: each node feeds an order-1 Markov model; its predicted route
is the argmax chain from its current landmark, up to ``horizon`` steps.  The
utility toward destination ``L`` is the probability of the chain prefix that
first reaches ``L`` (product of step probabilities), and 0 when ``L`` is not
on the predicted route.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.base import UtilityProtocol
from repro.core.predictor import MarkovPredictor
from repro.sim.engine import World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.utils.validation import require_positive


class PGRProtocol(UtilityProtocol):
    """PGR with landmark destinations."""

    name = "PGR"

    def __init__(self, *, horizon: int = 5) -> None:
        require_positive("horizon", horizon)
        self.horizon = int(horizon)
        self._pred: Dict[int, MarkovPredictor] = {}
        # route cache invalidated whenever the node's location changes:
        # node -> (position, route, first-occurrence dest -> cum prob)
        self._route_cache: Dict[
            int, Tuple[Optional[int], List[Tuple[int, float]], Dict[int, float]]
        ] = {}

    def _predictor(self, nid: int) -> MarkovPredictor:
        p = self._pred.get(nid)
        if p is None:
            p = MarkovPredictor(1)
            self._pred[nid] = p
        return p

    # -- learning ---------------------------------------------------------------
    def learn_visit(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._predictor(node.nid).update(station.lid)
        self._route_cache.pop(node.nid, None)

    # -- route prediction -------------------------------------------------------------
    def predicted_route(self, node: MobileNode) -> List[Tuple[int, float]]:
        """The argmax chain from the node's position: [(landmark, cum_prob)].

        The chain greedily follows the most likely transition at each step,
        multiplying probabilities; it stops at ``horizon`` steps or when the
        model has no information, and avoids immediate back-and-forth cycles
        by stopping when a landmark repeats.
        """
        nid = node.nid
        here = node.at_landmark
        if here is None:
            here = node.prev_landmark
        cache = self._route_cache.get(nid)
        if cache is not None and cache[0] == here:
            return cache[1]
        pred = self._predictor(nid)
        route: List[Tuple[int, float]] = []
        if here is None or not pred.history:
            self._route_cache[nid] = (here, route, {})
            return route
        # walk a copy of the chain without mutating learned state
        sim = MarkovPredictor(1)
        sim._counts = pred._counts  # noqa: SLF001 - shared read-only counts
        sim._freq = pred._freq  # noqa: SLF001
        sim.fallback = False
        sim.history = list(pred.history)
        # the chain must start from the node's *current* position, which may
        # be ahead of the learned history (e.g. mid-visit)
        if not sim.history or sim.history[-1] != here:
            sim.history = sim.history + [here]
        cum = 1.0
        seen = {here}
        for _ in range(self.horizon):
            guess = sim.predict()
            if guess is None:
                break
            lm, prob = guess
            cum *= prob
            route.append((lm, cum))
            if lm in seen:
                break
            seen.add(lm)
            sim.history = sim.history + [lm]
        by_dest: Dict[int, float] = {}
        for lm, cum in route:
            if lm not in by_dest:
                by_dest[lm] = cum
        self._route_cache[nid] = (here, route, by_dest)
        return route

    # -- utility --------------------------------------------------------------------
    def utility(self, world: World, node: MobileNode, dest: int, t: float) -> float:
        # inlined predicted_route cache hit + first-occurrence lookup: this
        # runs once per (carrier, destination) pair at every push/contact
        nid = node.nid
        here = node.at_landmark
        if here is None:
            here = node.prev_landmark
        cache = self._route_cache.get(nid)
        if cache is None or cache[0] != here:
            self.predicted_route(node)
            cache = self._route_cache[nid]
        return cache[2].get(dest, 0.0)

    def table_size(self, world: World, node: MobileNode) -> int:
        return max(1, len(self.predicted_route(node)))
