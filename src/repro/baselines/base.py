"""Shared machinery for the baseline routing protocols (Section V-A.1).

The paper compares DTN-FLOW against SimBet, PROPHET, PGR, GeoComm and PER,
all "adapted to fit landmark-to-landmark routing": each protocol defines a
*utility* ``U_n(L)`` — how suitable node ``n`` is for carrying packets toward
destination landmark ``L`` — and packets always move to higher-utility
holders:

* a landmark station hands a queued packet to the connected node with the
  highest positive utility for the packet's destination;
* at a node-node contact, a packet moves when the peer's utility exceeds
  the holder's by more than ``forward_margin``;
* delivery happens when a carrier connects to the destination landmark
  (handled by the engine).

Maintenance cost: on every contact the two nodes exchange their utility
tables (and a node uploads its table when registering at a station), each
charged as ``ceil(entries / table_entry_unit)`` operations, mirroring how
the paper charges "forwarding a routing table or a meeting probability table
with n entries".
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.obs import event_types as ev
from repro.sim.engine import RoutingProtocol, World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.sim.packets import Packet


class UtilityProtocol(RoutingProtocol):
    """Base class for single-copy utility-gradient routing baselines."""

    name = "utility"
    uses_contacts = True
    #: minimum utility advantage before a node-node forward happens
    forward_margin = 0.0
    #: station hands a packet over only when the carrier utility exceeds this
    station_threshold = 0.0
    #: True when ``utility`` never *increases* between learning events (it is
    #: constant or decays with ``t``).  Learning only happens inside visit
    #: handling, node free space only shrinks and node packet sets only grow
    #: between generation events at a station, so under this invariant a
    #: queued packet that failed to move at one generation event can never
    #: move at a later one — which lets ``on_packet_generated`` evaluate just
    #: the newly created packet instead of rescanning the whole queue.
    #: Protocols whose utilities can jump upward over time with frozen
    #: knowledge (PER's deliberately stale DP cache) must opt out.
    #: The invariant has two further escape hatches, handled at the call
    #: site: node-node contact forwards *free* the holder's buffer space
    #: (the station is marked for one full rescan), and faulted runs can
    #: block a transfer whose packet then waits with positive utility (the
    #: fast path is disabled outright when a fault plane is active).
    time_monotone_utilities = True

    # -- protocol-specific ---------------------------------------------------------
    def utility(self, world: World, node: MobileNode, dest: int, t: float) -> float:
        """Suitability of ``node`` to carry packets toward landmark ``dest``."""
        raise NotImplementedError

    def table_size(self, world: World, node: MobileNode) -> int:
        """Entries in the node's utility table (for maintenance accounting)."""
        return world.trace.n_landmarks

    def learn_visit(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        """Update mobility knowledge when ``node`` connects to ``station``."""

    def learn_contact(
        self, world: World, a: MobileNode, b: MobileNode, t: float
    ) -> None:
        """Update mobility knowledge on a node-node contact (optional)."""

    #: class-level fallback so protocol objects driven directly (unit tests,
    #: notebooks) work without ``setup``; extra entries only ever force full
    #: rescans, never skip one
    _gen_rescan: set = set()

    def setup(self, world: World) -> None:
        #: stations owed a full queue rescan at their next generation event
        #: (their last contact may have freed buffer space on a carrier)
        self._gen_rescan = set()

    # -- common mechanics ------------------------------------------------------------
    def _station_push(
        self, world: World, station: LandmarkStation, t: float
    ) -> None:
        """Hand station packets to the best connected carriers."""
        # a full scan re-establishes the generation fast path's invariant
        # (contacts that run *after* this push will re-mark the station)
        self._gen_rescan.discard(station.lid)
        nodes = world.connected_nodes(station)
        if not nodes:
            return
        prof = world.obs.profiler
        t_start = perf_counter() if prof.enabled else 0.0
        # Utilities depend only on (node, destination, t) — never on buffer
        # contents — and no learning happens inside a push, so one value per
        # (node, destination) pair serves every packet in the queue.  (A
        # utility's side effects, e.g. SimBet's lazy betweenness refresh, run
        # on the first call exactly as they did per-call.)
        utility = self.utility
        memo: dict = {}
        memo_get = memo.get
        for p in station.buffer.packets():
            best: Optional[MobileNode] = None
            best_util = self.station_threshold
            dst = p.dst
            size = p.size
            pid = p.pid
            for nd in nodes:
                # can_accept inlined: this is the innermost loop of every
                # utility baseline's forwarding work
                buf = nd.buffer
                if size > buf.capacity_bytes - buf._used or pid in buf._packets:
                    continue
                key = (nd.nid, dst)
                u = memo_get(key)
                if u is None:
                    u = utility(world, nd, dst, t)
                    memo[key] = u
                if u > best_util:
                    best, best_util = nd, u
            if best is not None:
                world.station_to_node(station, best, p)
        if prof.enabled:
            prof.add("baseline.carrier_selection", perf_counter() - t_start)

    def _push_skip_sound(self, world: World, station: LandmarkStation) -> bool:
        """Whether skipping utility calls for incumbent nodes is side-effect
        free right now.

        The fast paths assume re-evaluating an incumbent (node, destination)
        pair is *pure* — same value, no internal state change.  Protocols
        whose utility maintains call-timing-dependent state (SimBet's
        periodic betweenness refresh) override this to demand that every
        skipped call would have been a plain cache hit.
        """
        return True

    def _visit_push_eligible(self, world: World, station: LandmarkStation, t: float) -> bool:
        """Whether the visit-start push may scan only the arriving node.

        Learning for every *other* connected node happens exclusively in
        contact handling, which marks the station for a full rescan; with
        no fault plane (time-gated blocks) and no link budget (a blocked
        transfer would leave a positive-utility packet queued), a queued
        packet rejected at the last full scan is still rejected by every
        incumbent node — only the arriving node's utilities are new.
        """
        return (
            self.time_monotone_utilities
            and not world._faults_active
            and world._rate is None
            and station.lid not in self._gen_rescan
            and self._push_skip_sound(world, station)
        )

    def _station_push_single_node(
        self, world: World, station: LandmarkStation, node: MobileNode, t: float
    ) -> None:
        """Offer every queued packet to just the arriving node."""
        prof = world.obs.profiler
        t_start = perf_counter() if prof.enabled else 0.0
        utility = self.utility
        threshold = self.station_threshold
        memo: dict = {}
        memo_get = memo.get
        buf = node.buffer
        for p in station.buffer.packets():
            if (
                p.size > buf.capacity_bytes - buf._used
                or p.pid in buf._packets
            ):
                continue
            dst = p.dst
            u = memo_get(dst)
            if u is None:
                u = utility(world, node, dst, t)
                memo[dst] = u
            if u > threshold:
                world.station_to_node(station, node, p)
        if prof.enabled:
            prof.add("baseline.carrier_selection", perf_counter() - t_start)

    def _compare_and_forward(
        self, world: World, holder: MobileNode, peer: MobileNode, t: float
    ) -> None:
        """Move ``holder``'s packets to ``peer`` when the peer ranks higher."""
        utility = self.utility
        margin = self.forward_margin
        memo_h: dict = {}
        memo_p: dict = {}
        for p in holder.buffer.packets():
            dst = p.dst
            u_holder = memo_h.get(dst)
            if u_holder is None:
                u_holder = utility(world, holder, dst, t)
                memo_h[dst] = u_holder
            u_peer = memo_p.get(dst)
            if u_peer is None:
                u_peer = utility(world, peer, dst, t)
                memo_p[dst] = u_peer
            if u_peer > u_holder + margin:
                world.node_to_node(holder, peer, p)

    # -- hooks -------------------------------------------------------------------------
    def on_visit_start(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self.learn_visit(world, node, station, t)
        # node registers its utility table with the station
        world.metrics.on_table_exchange(self.table_size(world, node))
        if world.obs_enabled:
            world.events.emit(
                t, ev.TABLE_EXCHANGE, node=node.nid, landmark=station.lid,
                kind="utility_table", n_entries=self.table_size(world, node),
            )
        if self._visit_push_eligible(world, station, t):
            self._station_push_single_node(world, station, node, t)
        else:
            self._station_push(world, station, t)

    def on_contact(
        self, world: World, a: MobileNode, b: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self.learn_contact(world, a, b, t)
        # bidirectional utility-table exchange
        world.metrics.on_table_exchange(self.table_size(world, a))
        world.metrics.on_table_exchange(self.table_size(world, b))
        if world.obs_enabled:
            world.events.emit(
                t, ev.TABLE_EXCHANGE, node=a.nid, landmark=station.lid,
                kind="utility_table", n_entries=self.table_size(world, a), peer=b.nid,
            )
            world.events.emit(
                t, ev.TABLE_EXCHANGE, node=b.nid, landmark=station.lid,
                kind="utility_table", n_entries=self.table_size(world, b), peer=a.nid,
            )
        self._compare_and_forward(world, a, b, t)
        self._compare_and_forward(world, b, a, t)
        # node-node forwards free the holder's buffer space, so a station
        # packet rejected for capacity could fit again: force the next
        # generation event here onto the full-rescan path
        self._gen_rescan.add(station.lid)

    def on_packet_generated(
        self, world: World, station: LandmarkStation, packet: Packet, t: float
    ) -> None:
        rescan = self._gen_rescan
        if (
            not self.time_monotone_utilities
            or world._faults_active
            or station.lid in rescan
            or not self._push_skip_sound(world, station)
        ):
            rescan.discard(station.lid)
            self._station_push(world, station, t)
            return
        # single-packet fast path (see ``time_monotone_utilities``): every
        # older queued packet was already evaluated at an earlier event and
        # nothing that could admit it has changed since, so scanning the
        # full queue would move exactly the packets this loop moves — only
        # the new one is a candidate
        nodes = world.connected_nodes(station)
        if not nodes:
            return
        prof = world.obs.profiler
        t_start = perf_counter() if prof.enabled else 0.0
        utility = self.utility
        best: Optional[MobileNode] = None
        best_util = self.station_threshold
        dst = packet.dst
        size = packet.size
        pid = packet.pid
        for nd in nodes:
            buf = nd.buffer
            if size > buf.capacity_bytes - buf._used or pid in buf._packets:
                continue
            u = utility(world, nd, dst, t)
            if u > best_util:
                best, best_util = nd, u
        if best is not None:
            world.station_to_node(station, best, packet)
        if prof.enabled:
            prof.add("baseline.carrier_selection", perf_counter() - t_start)
