"""Shared machinery for the baseline routing protocols (Section V-A.1).

The paper compares DTN-FLOW against SimBet, PROPHET, PGR, GeoComm and PER,
all "adapted to fit landmark-to-landmark routing": each protocol defines a
*utility* ``U_n(L)`` — how suitable node ``n`` is for carrying packets toward
destination landmark ``L`` — and packets always move to higher-utility
holders:

* a landmark station hands a queued packet to the connected node with the
  highest positive utility for the packet's destination;
* at a node-node contact, a packet moves when the peer's utility exceeds
  the holder's by more than ``forward_margin``;
* delivery happens when a carrier connects to the destination landmark
  (handled by the engine).

Maintenance cost: on every contact the two nodes exchange their utility
tables (and a node uploads its table when registering at a station), each
charged as ``ceil(entries / table_entry_unit)`` operations, mirroring how
the paper charges "forwarding a routing table or a meeting probability table
with n entries".
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.obs import event_types as ev
from repro.sim.engine import RoutingProtocol, World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.sim.packets import Packet


class UtilityProtocol(RoutingProtocol):
    """Base class for single-copy utility-gradient routing baselines."""

    name = "utility"
    uses_contacts = True
    #: minimum utility advantage before a node-node forward happens
    forward_margin = 0.0
    #: station hands a packet over only when the carrier utility exceeds this
    station_threshold = 0.0

    # -- protocol-specific ---------------------------------------------------------
    def utility(self, world: World, node: MobileNode, dest: int, t: float) -> float:
        """Suitability of ``node`` to carry packets toward landmark ``dest``."""
        raise NotImplementedError

    def table_size(self, world: World, node: MobileNode) -> int:
        """Entries in the node's utility table (for maintenance accounting)."""
        return world.trace.n_landmarks

    def learn_visit(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        """Update mobility knowledge when ``node`` connects to ``station``."""

    def learn_contact(
        self, world: World, a: MobileNode, b: MobileNode, t: float
    ) -> None:
        """Update mobility knowledge on a node-node contact (optional)."""

    # -- common mechanics ------------------------------------------------------------
    def _station_push(
        self, world: World, station: LandmarkStation, t: float
    ) -> None:
        """Hand station packets to the best connected carriers."""
        nodes = world.connected_nodes(station)
        if not nodes:
            return
        prof = world.obs.profiler
        t_start = perf_counter() if prof.enabled else 0.0
        for p in station.buffer.packets():
            best: Optional[MobileNode] = None
            best_util = self.station_threshold
            for nd in nodes:
                if not nd.buffer.can_accept(p):
                    continue
                u = self.utility(world, nd, p.dst, t)
                if u > best_util:
                    best, best_util = nd, u
            if best is not None:
                world.station_to_node(station, best, p)
        if prof.enabled:
            prof.add("baseline.carrier_selection", perf_counter() - t_start)

    def _compare_and_forward(
        self, world: World, holder: MobileNode, peer: MobileNode, t: float
    ) -> None:
        """Move ``holder``'s packets to ``peer`` when the peer ranks higher."""
        for p in holder.buffer.packets():
            u_holder = self.utility(world, holder, p.dst, t)
            u_peer = self.utility(world, peer, p.dst, t)
            if u_peer > u_holder + self.forward_margin:
                world.node_to_node(holder, peer, p)

    # -- hooks -------------------------------------------------------------------------
    def on_visit_start(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self.learn_visit(world, node, station, t)
        # node registers its utility table with the station
        world.metrics.on_table_exchange(self.table_size(world, node))
        if world.obs_enabled:
            world.events.emit(
                t, ev.TABLE_EXCHANGE, node=node.nid, landmark=station.lid,
                kind="utility_table", n_entries=self.table_size(world, node),
            )
        self._station_push(world, station, t)

    def on_contact(
        self, world: World, a: MobileNode, b: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self.learn_contact(world, a, b, t)
        # bidirectional utility-table exchange
        world.metrics.on_table_exchange(self.table_size(world, a))
        world.metrics.on_table_exchange(self.table_size(world, b))
        if world.obs_enabled:
            world.events.emit(
                t, ev.TABLE_EXCHANGE, node=a.nid, landmark=station.lid,
                kind="utility_table", n_entries=self.table_size(world, a), peer=b.nid,
            )
            world.events.emit(
                t, ev.TABLE_EXCHANGE, node=b.nid, landmark=station.lid,
                kind="utility_table", n_entries=self.table_size(world, b), peer=a.nid,
            )
        self._compare_and_forward(world, a, b, t)
        self._compare_and_forward(world, b, a, t)

    def on_packet_generated(
        self, world: World, station: LandmarkStation, packet: Packet, t: float
    ) -> None:
        self._station_push(world, station, t)
