"""GeoComm adapted to landmark destinations (Fan et al., TPDS 2013).

GeoComm computes, for every (node, geocommunity) pair, the node's *contact
probability per unit time* with the geocommunity — here, the probability
that the node contacts the landmark during a time unit, estimated as the
fraction of elapsed time units in which a contact occurred.  That
geocentrality drives forwarding: packets flow to nodes with a higher contact
probability for the destination landmark.

As the paper observes, a bus staying equally long at every stop on its route
has a nearly *uniform* contact probability across them, so this utility
separates carriers worse than PROPHET/SimBet on the DNET-like trace — the
behaviour behind GeoComm's lower relative success rate there.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.baselines.base import UtilityProtocol
from repro.mobility.trace import days
from repro.sim.engine import World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.utils.validation import require_positive


class GeoCommProtocol(UtilityProtocol):
    """GeoComm with landmark destinations."""

    name = "GeoComm"

    def __init__(self, *, time_unit: float = days(0.5)) -> None:
        require_positive("time_unit", time_unit)
        self.time_unit = float(time_unit)
        #: node -> landmark -> set of time-unit indices with a contact
        self._contact_units: Dict[int, Dict[int, Set[int]]] = {}
        self._first_seen: Dict[int, float] = {}

    def _unit_of(self, t: float) -> int:
        return int(t // self.time_unit)

    # -- learning ---------------------------------------------------------------
    def learn_visit(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._first_seen.setdefault(node.nid, t)
        units = self._contact_units.setdefault(node.nid, {})
        units.setdefault(station.lid, set()).add(self._unit_of(t))

    # -- utility --------------------------------------------------------------------
    def contact_probability(self, nid: int, dest: int, t: float) -> float:
        """Fraction of elapsed time units containing a contact with ``dest``."""
        first = self._first_seen.get(nid)
        if first is None:
            return 0.0
        unit = self.time_unit  # _unit_of inlined on this per-packet path
        elapsed_units = int(t // unit) - int(first // unit) + 1
        if elapsed_units < 1:
            elapsed_units = 1
        contacted = self._contact_units.get(nid)
        units = contacted.get(dest, ()) if contacted is not None else ()
        return min(1.0, len(units) / elapsed_units)

    def utility(self, world: World, node: MobileNode, dest: int, t: float) -> float:
        return self.contact_probability(node.nid, dest, t)

    def table_size(self, world: World, node: MobileNode) -> int:
        return max(1, len(self._contact_units.get(node.nid, ())))
