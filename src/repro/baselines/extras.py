"""Reference protocols outside the paper's comparison set.

* :class:`DirectDeliveryProtocol` — a packet waits at its origin landmark
  for a node that will (eventually) visit the destination, and moves only
  onto such a node.  A floor for success rate and forwarding cost.
* :class:`EpidemicProtocol` — unrestricted replication: every contact and
  every station visit copies packets onward.  A ceiling for success rate
  and a (very loose) ceiling for cost.  **Multi-copy**, so it violates the
  paper's single-copy assumption; it exists to sanity-check the simulator
  and to bracket the other protocols in examples.

Neither appears in the paper's figures; they are used by tests and the
quickstart example.
"""

from __future__ import annotations

import copy
from typing import Dict, Set

from repro.sim.engine import RoutingProtocol, World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.sim.packets import Packet


class DirectDeliveryProtocol(RoutingProtocol):
    """Hand packets only to nodes that have visited the destination before."""

    name = "Direct"
    uses_contacts = False
    #: all state is the per-node visited-landmark set, which travels with
    #: the node — safe to migrate between shard processes
    shard_safe = True

    def __init__(self) -> None:
        self._visited: Dict[int, Set[int]] = {}

    def on_visit_start(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._visited.setdefault(node.nid, set()).add(station.lid)
        for p in station.buffer.packets():
            if p.dst in self._visited.get(node.nid, ()) and node.buffer.can_accept(p):
                world.station_to_node(station, node, p)

    # -- shard API -----------------------------------------------------------------
    def export_node_state(self, nid: int) -> object:
        return self._visited.pop(nid, None)

    def import_node_state(self, nid: int, state: object) -> None:
        if state is not None:
            self._visited[nid] = state


class EpidemicProtocol(RoutingProtocol):
    """Flood copies of every packet to every encountered buffer with room.

    Copies share the original packet's id; the first copy reaching the
    destination landmark delivers, the rest are discarded (the engine
    ignores replicas of delivered packets).
    """

    name = "Epidemic"
    uses_contacts = True

    def _replicate(self, world: World, packet: Packet, target_buffer) -> bool:
        if not packet.in_flight:
            return False
        if not target_buffer.can_accept(packet):
            return False
        clone = copy.copy(packet)
        clone.meta = dict(packet.meta)
        clone.visited = list(packet.visited)
        added = target_buffer.add(clone)
        if added:
            world.metrics.on_forward()
        return added

    def on_visit_start(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        # station -> node
        for p in station.buffer.packets():
            if p.pid not in node.buffer:
                self._replicate(world, p, node.buffer)
        # node -> station (station keeps replicas for future visitors)
        for p in node.buffer.packets():
            if p.pid not in station.buffer and p.dst != station.lid:
                self._replicate(world, p, station.buffer)

    def on_contact(
        self, world: World, a: MobileNode, b: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        for p in a.buffer.packets():
            if p.pid not in b.buffer:
                self._replicate(world, p, b.buffer)
        for p in b.buffer.packets():
            if p.pid not in a.buffer:
                self._replicate(world, p, a.buffer)
