"""PER — Predict and Relay (Yuan, Cardei & Wu, MobiHoc 2009), landmark form.

PER models each node's mobility as a time-homogeneous semi-Markov process
over landmarks: a transit probability matrix plus sojourn-time statistics.
The utility of a node for destination landmark ``L`` is the probability that
the node *visits L before the packet's deadline*, computed by dynamic
programming over the node's transition matrix with the destination made
absorbing; the number of steps available is the remaining TTL divided by the
node's mean step time (mean sojourn + mean travel).

Because this probability changes every time the node moves (its current
state changes), carriers are re-ranked constantly — the behaviour behind
PER's highest forwarding cost in the paper's experiments.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.baselines.base import UtilityProtocol
from repro.mobility.trace import days
from repro.sim.engine import World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.utils.validation import require_positive


class _SemiMarkov:
    """Per-node semi-Markov mobility statistics."""

    __slots__ = ("trans", "sojourn_total", "sojourn_n", "step_total", "step_n", "last")

    def __init__(self) -> None:
        self.trans: Dict[int, Dict[int, int]] = {}
        self.sojourn_total = 0.0
        self.sojourn_n = 0
        self.step_total = 0.0
        self.step_n = 0
        self.last: Optional[Tuple[int, float]] = None  # (landmark, depart time)

    def record_visit(self, landmark: int, start: float) -> None:
        if self.last is not None:
            prev, depart = self.last
            if prev != landmark:
                row = self.trans.setdefault(prev, {})
                row[landmark] = row.get(landmark, 0) + 1
                self.step_total += max(0.0, start - depart)
                self.step_n += 1
        self.last = None  # closed on departure

    def record_departure(self, landmark: int, arrive: float, depart: float) -> None:
        self.sojourn_total += max(0.0, depart - arrive)
        self.sojourn_n += 1
        self.last = (landmark, depart)

    def mean_step_time(self, default: float) -> float:
        """Mean sojourn + mean travel per transit."""
        sojourn = self.sojourn_total / self.sojourn_n if self.sojourn_n else default
        travel = self.step_total / self.step_n if self.step_n else 0.0
        step = sojourn + travel
        return step if step > 0 else default

    def transition_row(self, landmark: int) -> Dict[int, float]:
        row = self.trans.get(landmark)
        if not row:
            return {}
        total = sum(row.values())
        return {dst: c / total for dst, c in row.items()}


class PERProtocol(UtilityProtocol):
    """PER with landmark destinations and deadline-aware utilities."""

    name = "PER"

    def __init__(self, *, max_steps: int = 64, default_step_time: float = days(0.25)) -> None:
        require_positive("max_steps", max_steps)
        require_positive("default_step_time", default_step_time)
        self.max_steps = int(max_steps)
        self.default_step_time = float(default_step_time)
        self._models: Dict[int, _SemiMarkov] = {}
        # (node, at_landmark, dest, steps) -> probability
        self._cache: Dict[Tuple[int, Optional[int], int, int], float] = {}

    def _model(self, nid: int) -> _SemiMarkov:
        m = self._models.get(nid)
        if m is None:
            m = _SemiMarkov()
            self._models[nid] = m
        return m

    # -- learning ---------------------------------------------------------------
    def learn_visit(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._model(node.nid).record_visit(station.lid, t)
        if len(self._cache) > 100_000:
            self._cache.clear()

    def on_visit_end(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._model(node.nid).record_departure(station.lid, node.visit_started, t)

    # -- reachability DP --------------------------------------------------------------
    def visit_probability(
        self, nid: int, here: Optional[int], dest: int, steps: int
    ) -> float:
        """P(node starting at ``here`` visits ``dest`` within ``steps`` transits)."""
        if here is None:
            return 0.0
        if here == dest:
            return 1.0
        steps = min(steps, self.max_steps)
        if steps <= 0:
            return 0.0
        # quantise the horizon so deadline jitter doesn't defeat the cache
        quantum = max(1, self.max_steps // 8)
        steps = max(1, (steps // quantum) * quantum)
        key = (nid, here, dest, steps)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        model = self._models.get(nid)
        if model is None:
            return 0.0
        # DP with dest absorbing: dist over current landmark, mass absorbed at dest
        dist: Dict[int, float] = {here: 1.0}
        absorbed = 0.0
        for _ in range(steps):
            nxt: Dict[int, float] = {}
            for lm, mass in dist.items():
                row = model.transition_row(lm)
                if not row:
                    continue
                for to, p in row.items():
                    m = mass * p
                    if to == dest:
                        absorbed += m
                    else:
                        nxt[to] = nxt.get(to, 0.0) + m
            dist = nxt
            if not dist or absorbed > 0.999:
                break
        self._cache[key] = absorbed
        return absorbed

    def _steps_for_deadline(self, nid: int, remaining: float) -> int:
        step_time = self._model(nid).mean_step_time(self.default_step_time)
        return max(0, int(remaining / step_time))

    # -- forwarding: utilities are per-packet (deadline-dependent) ----------------------
    def utility(self, world: World, node: MobileNode, dest: int, t: float) -> float:
        # generic form used by station pushes: assume a medium horizon
        here = node.at_landmark if node.at_landmark is not None else node.prev_landmark
        return self.visit_probability(node.nid, here, dest, self.max_steps // 2)

    def _compare_and_forward(
        self, world: World, holder: MobileNode, peer: MobileNode, t: float
    ) -> None:
        for p in holder.buffer.packets():
            steps_h = self._steps_for_deadline(holder.nid, p.remaining_ttl(t))
            steps_p = self._steps_for_deadline(peer.nid, p.remaining_ttl(t))
            here_h = holder.at_landmark if holder.at_landmark is not None else holder.prev_landmark
            here_p = peer.at_landmark if peer.at_landmark is not None else peer.prev_landmark
            u_h = self.visit_probability(holder.nid, here_h, p.dst, steps_h)
            u_p = self.visit_probability(peer.nid, here_p, p.dst, steps_p)
            if u_p > u_h + self.forward_margin:
                world.node_to_node(holder, peer, p)

    def _station_push(self, world: World, station: LandmarkStation, t: float) -> None:
        nodes = world.connected_nodes(station)
        if not nodes:
            return
        for p in station.buffer.packets():
            best = None
            best_util = self.station_threshold
            for nd in nodes:
                if not nd.buffer.can_accept(p):
                    continue
                steps = self._steps_for_deadline(nd.nid, p.remaining_ttl(t))
                u = self.visit_probability(nd.nid, nd.at_landmark, p.dst, steps)
                if u > best_util:
                    best, best_util = nd, u
            if best is not None:
                world.station_to_node(station, best, p)

    def table_size(self, world: World, node: MobileNode) -> int:
        return max(1, len(self._model(node.nid).trans))
