"""PER — Predict and Relay (Yuan, Cardei & Wu, MobiHoc 2009), landmark form.

PER models each node's mobility as a time-homogeneous semi-Markov process
over landmarks: a transit probability matrix plus sojourn-time statistics.
The utility of a node for destination landmark ``L`` is the probability that
the node *visits L before the packet's deadline*, computed by dynamic
programming over the node's transition matrix with the destination made
absorbing; the number of steps available is the remaining TTL divided by the
node's mean step time (mean sojourn + mean travel).

Because this probability changes every time the node moves (its current
state changes), carriers are re-ranked constantly — the behaviour behind
PER's highest forwarding cost in the paper's experiments.
"""

from __future__ import annotations

from math import inf
from typing import Dict, Optional, Tuple

from repro.baselines.base import UtilityProtocol
from repro.mobility.trace import days
from repro.sim.engine import World
from repro.sim.entities import LandmarkStation, MobileNode
from repro.utils.validation import require_positive


class _SemiMarkov:
    """Per-node semi-Markov mobility statistics.

    Normalized transition rows and the mean step time are memoized and
    invalidated *at the mutation site* (``record_visit`` touches exactly one
    row; both recorders move the timing sums), so reads always see the same
    values the historical recompute-per-call code produced — this pair of
    computations dominated whole-run CPU time before the caches.
    """

    __slots__ = (
        "trans",
        "sojourn_total",
        "sojourn_n",
        "step_total",
        "step_n",
        "last",
        "version",
        "edge_epoch",
        "_norm",
        "_mean_step",
    )

    def __init__(self) -> None:
        self.trans: Dict[int, Dict[int, int]] = {}
        self.sojourn_total = 0.0
        self.sojourn_n = 0
        self.step_total = 0.0
        self.step_n = 0
        self.last: Optional[Tuple[int, float]] = None  # (landmark, depart time)
        #: bumped on every transition-matrix mutation.  While a node sits at
        #: a station its model is frozen, so DP state computed during the
        #: visit can be resumed by every later query of the same visit.
        self.version = 0
        #: bumped only when a transit adds a *new* edge to the graph.
        #: Counts only ever increment, so the edge set — and with it
        #: landmark-to-landmark reachability — grows monotonically and can
        #: be memoized against this epoch.
        self.edge_epoch = 0
        #: landmark -> normalized transition row (shared, treat as read-only)
        self._norm: Dict[int, Dict[int, float]] = {}
        self._mean_step: Optional[Tuple[float, float]] = None  # (default, value)

    def record_visit(self, landmark: int, start: float) -> None:
        if self.last is not None:
            prev, depart = self.last
            if prev != landmark:
                row = self.trans.setdefault(prev, {})
                if landmark not in row:
                    self.edge_epoch += 1
                row[landmark] = row.get(landmark, 0) + 1
                self.step_total += max(0.0, start - depart)
                self.step_n += 1
                self._norm.pop(prev, None)
                self._mean_step = None
                self.version += 1
        self.last = None  # closed on departure

    def record_departure(self, landmark: int, arrive: float, depart: float) -> None:
        self.sojourn_total += max(0.0, depart - arrive)
        self.sojourn_n += 1
        self.last = (landmark, depart)
        self._mean_step = None

    def mean_step_time(self, default: float) -> float:
        """Mean sojourn + mean travel per transit."""
        cached = self._mean_step
        if cached is not None and cached[0] == default:
            return cached[1]
        sojourn = self.sojourn_total / self.sojourn_n if self.sojourn_n else default
        travel = self.step_total / self.step_n if self.step_n else 0.0
        step = sojourn + travel
        value = step if step > 0 else default
        self._mean_step = (default, value)
        return value

    def transition_row(self, landmark: int) -> Dict[int, float]:
        cached = self._norm.get(landmark)
        if cached is not None:
            return cached
        row = self.trans.get(landmark)
        if not row:
            norm: Dict[int, float] = {}
        else:
            total = sum(row.values())
            norm = {dst: c / total for dst, c in row.items()}
        self._norm[landmark] = norm
        return norm


class PERProtocol(UtilityProtocol):
    """PER with landmark destinations and deadline-aware utilities."""

    name = "PER"
    #: the DP cache is deliberately stale (observed behaviour): a smaller
    #: steps-bucket can serve an *older, higher* value after a larger bucket
    #: returned 0.0, so utilities are not monotone in time and the generic
    #: single-packet fast path is unsound.  PER instead uses a sharper
    #: criterion (see ``on_packet_generated``): between generation events a
    #: queued packet's utilities — and the cache keys its evaluation would
    #: touch — can only change when its deadline horizon crosses a
    #: steps-bucket boundary, and each full scan records the earliest such
    #: crossing.
    time_monotone_utilities = False

    def __init__(self, *, max_steps: int = 64, default_step_time: float = days(0.25)) -> None:
        require_positive("max_steps", max_steps)
        require_positive("default_step_time", default_step_time)
        self.max_steps = int(max_steps)
        self.default_step_time = float(default_step_time)
        self._models: Dict[int, _SemiMarkov] = {}
        # (node, at_landmark, dest, steps) -> probability
        self._cache: Dict[Tuple[int, Optional[int], int, int], float] = {}
        # (node, here, dest) -> (model version, steps run, dist, absorbed,
        # terminal) — the DP's *state* after `steps run` transits.  A later
        # query over the same *unmutated* model (the common case: every
        # query during one visit, since a node's model only changes when it
        # transits) resumes from here instead of recomputing from step 0;
        # the continued iterations perform the identical operation sequence
        # a from-scratch run would, so results are bit-identical.  Unlike
        # `_cache` (whose deliberate staleness is part of observed behaviour
        # and must not change), entries here are never reused across model
        # mutations.
        self._dp_state: Dict[
            Tuple[int, int, int],
            Tuple[int, int, Dict[int, float], float, bool],
        ] = {}
        # node -> (edge epoch, reverse adjacency of its transit graph)
        self._rev: Dict[int, Tuple[int, Dict[int, list]]] = {}
        # (node, dest) -> (edge epoch, landmarks from which dest is
        # reachable).  When the carrier's position is not in the set, no
        # trajectory ever hits dest and the DP would return exactly 0.0 —
        # the dominant case in practice (most packets are bound for
        # landmarks outside the carrier's roaming area), skipped outright.
        self._reach: Dict[Tuple[int, int], Tuple[int, frozenset]] = {}
        # station lid -> earliest t at which any queued packet's steps
        # bucket (for any connected node) can change; until then a repeat
        # full scan would be a pure cache-hit replay with no transfers and
        # no new cache entries, so generation events skip it
        self._next_recheck: Dict[int, float] = {}

    def _model(self, nid: int) -> _SemiMarkov:
        m = self._models.get(nid)
        if m is None:
            m = _SemiMarkov()
            self._models[nid] = m
        return m

    # -- learning ---------------------------------------------------------------
    def learn_visit(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._model(node.nid).record_visit(station.lid, t)
        if len(self._cache) > 100_000:
            self._cache.clear()
            # the skip criteria promise "a repeat scan is a pure cache-hit
            # replay"; an emptied cache voids that, so force every station
            # through one full scan (which rebuilds its recheck horizon)
            self._next_recheck.clear()

    def on_visit_end(
        self, world: World, node: MobileNode, station: LandmarkStation, t: float
    ) -> None:
        self._model(node.nid).record_departure(station.lid, node.visit_started, t)

    # -- reachability DP --------------------------------------------------------------
    def visit_probability(
        self, nid: int, here: Optional[int], dest: int, steps: int
    ) -> float:
        """P(node starting at ``here`` visits ``dest`` within ``steps`` transits)."""
        if here is None:
            return 0.0
        if here == dest:
            return 1.0
        steps = min(steps, self.max_steps)
        if steps <= 0:
            return 0.0
        # quantise the horizon so deadline jitter doesn't defeat the cache
        quantum = max(1, self.max_steps // 8)
        steps = max(1, (steps // quantum) * quantum)
        key = (nid, here, dest, steps)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        model = self._models.get(nid)
        if model is None:
            return 0.0
        # reachability gate: if no path from `here` to `dest` exists in the
        # node's transit graph, no trajectory absorbs and the DP's answer is
        # exactly 0.0 — skip the whole iteration.  Edges are only ever
        # added, so the memo stays valid until the next new edge.
        epoch = model.edge_epoch
        rkey = (nid, dest)
        reach_hit = self._reach.get(rkey)
        if reach_hit is not None and reach_hit[0] == epoch:
            reach = reach_hit[1]
        else:
            rev_hit = self._rev.get(nid)
            if rev_hit is not None and rev_hit[0] == epoch:
                rev = rev_hit[1]
            else:
                rev = {}
                for src, row in model.trans.items():
                    for to in row:
                        rev.setdefault(to, []).append(src)
                self._rev[nid] = (epoch, rev)
            seen = {dest}
            stack = [dest]
            rev_get = rev.get
            while stack:
                for p in rev_get(stack.pop(), ()):
                    if p not in seen:
                        seen.add(p)
                        stack.append(p)
            reach = frozenset(seen)
            self._reach[rkey] = (epoch, reach)
        if here not in reach:
            self._cache[key] = 0.0
            return 0.0
        # DP with dest absorbing: dist over current landmark, mass absorbed
        # at dest.  Resume from the memoized DP state while the model is
        # unmutated.
        version = model.version
        state_key = (nid, here, dest)
        state = self._dp_state.get(state_key)
        if state is not None and state[0] == version and state[1] <= steps:
            _, done, dist, absorbed, terminal = state
            if terminal or done == steps:
                # terminal: the run emptied its mass or crossed the 0.999
                # early-exit — any deeper horizon yields the same value
                self._cache[key] = absorbed
                return absorbed
        else:
            done = 0
            absorbed = 0.0
            dist = {here: 1.0}
        norm = model._norm
        norm_get = norm.get
        transition_row = model.transition_row
        terminal = False
        for _ in range(steps - done):
            nxt: Dict[int, float] = {}
            nxt_get = nxt.get
            for lm, mass in dist.items():
                row = norm_get(lm)
                if row is None:
                    row = transition_row(lm)
                if not row:
                    continue
                for to, p in row.items():
                    m = mass * p
                    if to == dest:
                        absorbed += m
                    else:
                        nxt[to] = nxt_get(to, 0.0) + m
            dist = nxt
            if not dist or absorbed > 0.999:
                terminal = True
                break
        if len(self._dp_state) > 150_000:
            self._dp_state.clear()  # memory bound only; never affects values
        self._dp_state[state_key] = (version, steps, dist, absorbed, terminal)
        self._cache[key] = absorbed
        return absorbed

    def _steps_for_deadline(self, nid: int, remaining: float) -> int:
        step_time = self._model(nid).mean_step_time(self.default_step_time)
        return max(0, int(remaining / step_time))

    # -- forwarding: utilities are per-packet (deadline-dependent) ----------------------
    def utility(self, world: World, node: MobileNode, dest: int, t: float) -> float:
        # generic form used by station pushes: assume a medium horizon
        here = node.at_landmark if node.at_landmark is not None else node.prev_landmark
        return self.visit_probability(node.nid, here, dest, self.max_steps // 2)

    def _compare_and_forward(
        self, world: World, holder: MobileNode, peer: MobileNode, t: float
    ) -> None:
        packets = holder.buffer.packets()
        if not packets:
            return
        # step time, position, and margin are invariant across the packet
        # loop (utilities never depend on buffer contents, and no learning
        # happens mid-contact) — hoist them out of the per-packet work
        step_h = self._model(holder.nid).mean_step_time(self.default_step_time)
        step_p = self._model(peer.nid).mean_step_time(self.default_step_time)
        here_h = holder.at_landmark if holder.at_landmark is not None else holder.prev_landmark
        here_p = peer.at_landmark if peer.at_landmark is not None else peer.prev_landmark
        margin = self.forward_margin
        visit_probability = self.visit_probability
        cache_get = self._cache.get
        max_steps = self.max_steps
        quantum = max(1, max_steps // 8)
        hid, pid = holder.nid, peer.nid
        for p in packets:
            remaining = p.deadline - t
            dst = p.dst
            # visit_probability's trivial and cache-hit tiers, inlined: this
            # pair of lookups runs once per carried packet per contact
            s = int(remaining / step_h)
            if here_h is None or s <= 0:
                u_h = 0.0
            elif here_h == dst:
                u_h = 1.0
            else:
                if s > max_steps:
                    s = max_steps
                q = s // quantum * quantum
                u_h = cache_get((hid, here_h, dst, q if q else 1))
                if u_h is None:
                    u_h = visit_probability(hid, here_h, dst, s)
            s = int(remaining / step_p)
            if here_p is None or s <= 0:
                u_p = 0.0
            elif here_p == dst:
                u_p = 1.0
            else:
                if s > max_steps:
                    s = max_steps
                q = s // quantum * quantum
                u_p = cache_get((pid, here_p, dst, q if q else 1))
                if u_p is None:
                    u_p = visit_probability(pid, here_p, dst, s)
            if u_p > u_h + margin:
                world.node_to_node(holder, peer, p)

    def _station_push(self, world: World, station: LandmarkStation, t: float) -> None:
        self._gen_rescan.discard(station.lid)
        nodes = world.connected_nodes(station)
        if not nodes:
            return
        # per-node mean step time, computed lazily on first use so models are
        # only instantiated for nodes that can actually accept a packet —
        # matching the historical call pattern exactly
        step_of: Dict[int, float] = {}
        step_get = step_of.get
        default_step = self.default_step_time
        visit_probability = self.visit_probability
        cache_get = self._cache.get
        max_steps = self.max_steps
        quantum = max(1, max_steps // 8)
        next_t = inf
        for p in station.buffer.packets():
            best = None
            best_util = self.station_threshold
            remaining = p.deadline - t
            deadline = p.deadline
            dst = p.dst
            size = p.size
            pid = p.pid
            pkt_next = inf
            for nd in nodes:
                # can_accept + visit_probability's cache-hit tier, inlined:
                # this is the innermost loop of the whole protocol
                buf = nd.buffer
                if size > buf.capacity_bytes - buf._used or pid in buf._packets:
                    continue
                nid = nd.nid
                step = step_get(nid)
                if step is None:
                    step = self._model(nid).mean_step_time(default_step)
                    step_of[nid] = step
                s = int(remaining / step)
                here = nd.at_landmark
                if here is None or s <= 0:
                    u = 0.0
                else:
                    if here == dst:
                        u = 1.0
                    else:
                        if s > max_steps:
                            s = max_steps
                        q = s // quantum * quantum
                        b = q if q else 1
                        u = cache_get((nid, here, dst, b))
                        if u is None:
                            u = visit_probability(nid, here, dst, s)
                        # re-evaluating this pair is a pure cache hit until
                        # the horizon drops below its current bucket
                        boundary = deadline - b * step
                        if boundary < pkt_next:
                            pkt_next = boundary
                if u > best_util:
                    best, best_util = nd, u
            if best is None or not world.station_to_node(station, best, p):
                # the packet stays queued: its next bucket crossing bounds
                # how long repeat scans would replay identical decisions
                if pkt_next < next_t:
                    next_t = pkt_next
        self._next_recheck[station.lid] = next_t

    def _visit_push_eligible(self, world: World, station: LandmarkStation, t: float) -> bool:
        # same structural argument as the base class (incumbent learning
        # only happens in contacts, which mark a rescan; no fault plane, no
        # link budget), with PER's bucket-boundary criterion standing in for
        # time-monotonicity: before the earliest recorded bucket crossing,
        # re-evaluating every incumbent (packet, node) pair replays the last
        # full scan verbatim, so only the arriving node is new
        return (
            not world._faults_active
            and world._rate is None
            and station.lid not in self._gen_rescan
            and t < self._next_recheck.get(station.lid, -inf)
        )

    def _station_push_single_node(
        self, world: World, station: LandmarkStation, node: MobileNode, t: float
    ) -> None:
        nid = node.nid
        step = self._model(nid).mean_step_time(self.default_step_time)
        here = node.at_landmark
        visit_probability = self.visit_probability
        cache_get = self._cache.get
        max_steps = self.max_steps
        quantum = max(1, max_steps // 8)
        threshold = self.station_threshold
        buf = node.buffer
        next_t = inf
        for p in station.buffer.packets():
            if (
                p.size > buf.capacity_bytes - buf._used
                or p.pid in buf._packets
            ):
                continue
            deadline = p.deadline
            dst = p.dst
            s = int((deadline - t) / step)
            if here is None or s <= 0:
                continue
            if here == dst:
                u = 1.0
                boundary = inf
            else:
                if s > max_steps:
                    s = max_steps
                q = s // quantum * quantum
                b = q if q else 1
                u = cache_get((nid, here, dst, b))
                if u is None:
                    u = visit_probability(nid, here, dst, s)
                boundary = deadline - b * step
            if u > threshold:
                world.station_to_node(station, node, p)
            elif boundary < next_t:
                next_t = boundary
        if next_t < self._next_recheck.get(station.lid, inf):
            self._next_recheck[station.lid] = next_t

    def on_packet_generated(
        self, world: World, station: LandmarkStation, packet: Packet, t: float
    ) -> None:
        lid = station.lid
        if (
            world._faults_active
            or lid in self._gen_rescan
            or t >= self._next_recheck.get(lid, -inf)
        ):
            # something a skipped scan could observe may have changed: a
            # fault plane gates transfers on time, a contact freed carrier
            # space, or some queued packet crossed a steps-bucket boundary
            self._station_push(world, station, t)
            return
        # otherwise a full scan would replay the previous one verbatim for
        # every older packet (same cache keys, same zero/blocked outcomes),
        # so only the new packet needs evaluating
        nodes = world.connected_nodes(station)
        if not nodes:
            return
        step_of: Dict[int, float] = {}
        step_get = step_of.get
        default_step = self.default_step_time
        visit_probability = self.visit_probability
        cache_get = self._cache.get
        max_steps = self.max_steps
        quantum = max(1, max_steps // 8)
        best = None
        best_util = self.station_threshold
        remaining = packet.deadline - t
        deadline = packet.deadline
        dst = packet.dst
        size = packet.size
        pid = packet.pid
        pkt_next = inf
        for nd in nodes:
            buf = nd.buffer
            if size > buf.capacity_bytes - buf._used or pid in buf._packets:
                continue
            nid = nd.nid
            step = step_get(nid)
            if step is None:
                step = self._model(nid).mean_step_time(default_step)
                step_of[nid] = step
            s = int(remaining / step)
            here = nd.at_landmark
            if here is None or s <= 0:
                u = 0.0
            else:
                if here == dst:
                    u = 1.0
                else:
                    if s > max_steps:
                        s = max_steps
                    q = s // quantum * quantum
                    b = q if q else 1
                    u = cache_get((nid, here, dst, b))
                    if u is None:
                        u = visit_probability(nid, here, dst, s)
                    boundary = deadline - b * step
                    if boundary < pkt_next:
                        pkt_next = boundary
            if u > best_util:
                best, best_util = nd, u
        if best is None or not world.station_to_node(station, best, packet):
            if pkt_next < self._next_recheck.get(lid, inf):
                self._next_recheck[lid] = pkt_next

    def table_size(self, world: World, node: MobileNode) -> int:
        return max(1, len(self._model(node.nid).trans))
