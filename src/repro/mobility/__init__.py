"""Mobility substrate: trace model, parsers, preprocessing, synthetic models,
and the Section III-B trace analytics."""

from repro.mobility.trace import Trace, Transit, VisitRecord, days, hours, SECONDS_PER_DAY
from repro.mobility.parsers import (
    ApSighting,
    RawAssociation,
    parse_dart_log,
    parse_dnet_log,
    write_dart_log,
    write_dnet_log,
)
from repro.mobility.preprocess import (
    PreprocessPipeline,
    cluster_aps,
    filter_inactive_nodes,
    filter_rare_aps,
    filter_short_visits,
    merge_adjacent_visits,
    rebase_time,
    relabel_compact,
)
from repro.mobility.io import dump_trace, dumps_trace, load_trace, loads_trace
from repro.mobility.synthetic import (
    BusConfig,
    BusMobilityModel,
    CampusConfig,
    CampusMobilityModel,
    CampusDeploymentModel,
    DeploymentConfig,
    dart_like,
    deployment_trace,
    dnet_like,
)
from repro.mobility import io, stats

__all__ = [
    "Trace",
    "Transit",
    "VisitRecord",
    "days",
    "hours",
    "SECONDS_PER_DAY",
    "ApSighting",
    "RawAssociation",
    "parse_dart_log",
    "parse_dnet_log",
    "write_dart_log",
    "write_dnet_log",
    "PreprocessPipeline",
    "cluster_aps",
    "filter_inactive_nodes",
    "filter_rare_aps",
    "filter_short_visits",
    "merge_adjacent_visits",
    "rebase_time",
    "relabel_compact",
    "BusConfig",
    "BusMobilityModel",
    "CampusConfig",
    "CampusMobilityModel",
    "CampusDeploymentModel",
    "DeploymentConfig",
    "dart_like",
    "deployment_trace",
    "dnet_like",
    "stats",
    "io",
    "dump_trace",
    "load_trace",
]
