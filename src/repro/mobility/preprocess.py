"""Trace preprocessing, mirroring Section III-B.1 of the paper.

For the DART trace the paper:

* regards each building as a landmark,
* merges neighbouring records referring to the same node and landmark,
* removes short connections (< 200 s),
* removes nodes with few records (< 500).

For the DNET trace it additionally:

* removes APs that did not appear frequently (< 50 sightings),
* maps APs within 1.5 km of each other onto one landmark.

Each of those steps is a standalone function here, composed by
:class:`PreprocessPipeline`; the synthetic generators emit *raw* logs so the
full pipeline is exercised end to end.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.parsers import ApSighting, RawAssociation
from repro.mobility.trace import Trace, VisitRecord
from repro.utils.validation import require_non_negative, require_positive


def merge_adjacent_visits(
    records: Iterable[VisitRecord], max_gap: float = 0.0
) -> List[VisitRecord]:
    """Merge consecutive records of the same node at the same landmark.

    Two visits merge when the second starts within ``max_gap`` seconds of the
    first ending (the paper "merged neighbouring records referring to the
    same node and the same landmark").  Overlapping records always merge.
    """
    require_non_negative("max_gap", max_gap)
    by_node: Dict[int, List[VisitRecord]] = {}
    for rec in sorted(records):
        by_node.setdefault(rec.node, []).append(rec)

    out: List[VisitRecord] = []
    for node, visits in by_node.items():
        merged: List[VisitRecord] = []
        for rec in visits:
            if (
                merged
                and merged[-1].landmark == rec.landmark
                and rec.start - merged[-1].end <= max_gap
            ):
                prev = merged.pop()
                merged.append(
                    VisitRecord(
                        start=prev.start,
                        end=max(prev.end, rec.end),
                        node=node,
                        landmark=rec.landmark,
                    )
                )
            else:
                merged.append(rec)
        out.extend(merged)
    return sorted(out)


def filter_short_visits(
    records: Iterable[VisitRecord], min_duration: float = 200.0
) -> List[VisitRecord]:
    """Drop visits shorter than ``min_duration`` seconds (paper: 200 s)."""
    require_non_negative("min_duration", min_duration)
    return [r for r in records if r.duration >= min_duration]


def filter_inactive_nodes(
    records: Iterable[VisitRecord], min_records: int = 500
) -> List[VisitRecord]:
    """Drop nodes contributing fewer than ``min_records`` visits (paper: 500)."""
    require_non_negative("min_records", min_records)
    recs = list(records)
    counts = Counter(r.node for r in recs)
    keep = {n for n, c in counts.items() if c >= min_records}
    return [r for r in recs if r.node in keep]


def filter_unpopular_landmarks(
    records: Iterable[VisitRecord], min_visits: int = 0
) -> List[VisitRecord]:
    """Drop landmarks with fewer than ``min_visits`` total visits.

    Landmarks are *popular places* by construction (Section IV-A selects
    them from the most-visited candidates); a place that is almost never
    visited would not be provisioned with a central station, so its visits
    are removed from the trace rather than promoted to a subarea.
    """
    require_non_negative("min_visits", min_visits)
    recs = list(records)
    counts = Counter(r.landmark for r in recs)
    keep = {l for l, c in counts.items() if c >= min_visits}
    return [r for r in recs if r.landmark in keep]


def filter_rare_aps(
    sightings: Iterable[ApSighting], min_count: int = 50
) -> List[ApSighting]:
    """Drop APs with fewer than ``min_count`` sightings (paper: 50)."""
    require_non_negative("min_count", min_count)
    sights = list(sightings)
    counts = Counter(s.ap for s in sights)
    keep = {ap for ap, c in counts.items() if c >= min_count}
    return [s for s in sights if s.ap in keep]


def cluster_aps(
    ap_coords: Dict[str, Tuple[float, float]],
    radius_km: float = 1.5,
    *,
    weights: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Greedy distance-based clustering of APs into landmarks.

    APs are processed in decreasing weight (sighting count) order; each AP
    joins the first existing cluster whose *seed* lies within ``radius_km``,
    otherwise it seeds a new cluster.  This mirrors the paper's "mapped APs
    that are within a certain distance (1.5 km) into one landmark".

    Coordinates are (lat, lon) in degrees; distances use an equirectangular
    approximation, which is accurate at city scale.

    Returns
    -------
    dict mapping AP name -> landmark id (0-based, dense).
    """
    require_positive("radius_km", radius_km)
    if not ap_coords:
        return {}
    names = list(ap_coords)
    if weights:
        names.sort(key=lambda a: (-weights.get(a, 0), a))
    else:
        names.sort()

    lat = np.radians(np.array([ap_coords[a][0] for a in names]))
    lon = np.radians(np.array([ap_coords[a][1] for a in names]))
    earth_km = 6371.0

    seeds: List[int] = []  # indices into names
    assignment: Dict[str, int] = {}
    for i, name in enumerate(names):
        assigned = None
        for ci, seed_idx in enumerate(seeds):
            dlat = lat[i] - lat[seed_idx]
            dlon = (lon[i] - lon[seed_idx]) * np.cos(0.5 * (lat[i] + lat[seed_idx]))
            dist = earth_km * float(np.hypot(dlat, dlon))
            if dist <= radius_km:
                assigned = ci
                break
        if assigned is None:
            seeds.append(i)
            assigned = len(seeds) - 1
        assignment[name] = assigned
    return assignment


def relabel_compact(records: Iterable[VisitRecord]) -> Tuple[List[VisitRecord], Dict[int, int], Dict[int, int]]:
    """Relabel node and landmark ids to dense 0..N-1 ranges.

    Returns ``(records, node_map, landmark_map)`` where the maps go from the
    *original* id to the compact id.
    """
    recs = sorted(records)
    node_ids = sorted({r.node for r in recs})
    lm_ids = sorted({r.landmark for r in recs})
    node_map = {orig: i for i, orig in enumerate(node_ids)}
    lm_map = {orig: i for i, orig in enumerate(lm_ids)}
    out = [
        VisitRecord(
            start=r.start, end=r.end, node=node_map[r.node], landmark=lm_map[r.landmark]
        )
        for r in recs
    ]
    return out, node_map, lm_map


def rebase_time(records: Iterable[VisitRecord]) -> List[VisitRecord]:
    """Shift timestamps so the earliest visit starts at t=0."""
    recs = sorted(records)
    if not recs:
        return []
    t0 = recs[0].start
    return [
        VisitRecord(start=r.start - t0, end=r.end - t0, node=r.node, landmark=r.landmark)
        for r in recs
    ]


@dataclass
class PreprocessPipeline:
    """The full DART/DNET cleaning pipeline with the paper's thresholds.

    Parameters mirror Section III-B.1; pass ``min_records=0`` etc. to disable
    individual stages.
    """

    merge_gap: float = 60.0
    min_visit_duration: float = 200.0
    min_node_records: int = 500
    min_ap_count: int = 50
    #: landmark-popularity floor (Section IV-A: landmarks are popular places)
    min_landmark_visits: int = 0
    ap_cluster_radius_km: float = 1.5
    compact_ids: bool = True
    rebase: bool = True
    #: populated by :meth:`run_dnet` with the AP -> landmark assignment
    ap_to_landmark: Dict[str, int] = field(default_factory=dict)

    def run_visits(self, records: Iterable[VisitRecord], name: str = "trace") -> Trace:
        """Clean landmark-level visit records (DART path)."""
        recs = merge_adjacent_visits(records, max_gap=self.merge_gap)
        recs = filter_short_visits(recs, min_duration=self.min_visit_duration)
        recs = filter_unpopular_landmarks(recs, min_visits=self.min_landmark_visits)
        recs = filter_inactive_nodes(recs, min_records=self.min_node_records)
        # A second merge pass: dropping short interleaved visits can make two
        # same-landmark records adjacent again.
        recs = merge_adjacent_visits(recs, max_gap=self.merge_gap)
        if self.compact_ids:
            recs, _, _ = relabel_compact(recs)
        if self.rebase:
            recs = rebase_time(recs)
        return Trace(recs, name=name)

    def run_dart(self, associations: Sequence[RawAssociation], name: str = "DART") -> Trace:
        """Clean a DART-style association log (each AP name = a building)."""
        buildings = sorted({a.ap for a in associations})
        ap_to_landmark = {b: i for i, b in enumerate(buildings)}
        self.ap_to_landmark = ap_to_landmark
        visits = [
            VisitRecord(start=a.start, end=a.end, node=a.node, landmark=ap_to_landmark[a.ap])
            for a in associations
        ]
        return self.run_visits(visits, name=name)

    def run_dnet(self, sightings: Sequence[ApSighting], name: str = "DNET") -> Trace:
        """Clean a DNET-style sighting log: rare-AP filter + AP clustering."""
        sights = filter_rare_aps(sightings, min_count=self.min_ap_count)
        counts = Counter(s.ap for s in sights)
        coords = {s.ap: (s.lat, s.lon) for s in sights}
        ap_to_landmark = cluster_aps(
            coords, radius_km=self.ap_cluster_radius_km, weights=dict(counts)
        )
        self.ap_to_landmark = ap_to_landmark
        visits = [
            VisitRecord(
                start=s.start, end=s.end, node=s.node, landmark=ap_to_landmark[s.ap]
            )
            for s in sights
        ]
        return self.run_visits(visits, name=name)
