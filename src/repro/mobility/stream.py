"""Streaming trace production and subarea partitioning.

A :class:`~repro.mobility.trace.Trace` materializes every
:class:`~repro.mobility.trace.VisitRecord` up front — fine for the paper's
DART/DNET scale, a hard wall for the ROADMAP's millions-of-users target.
This module adds the streaming counterpart:

* :class:`TraceStream` — a re-iterable, time-ordered record stream with
  explicit metadata (span, node/landmark sets), a streaming
  :meth:`TraceStream.replay_events` that emits the engine's event tuples
  in exactly the order the serial engine's global sort would produce
  (proved in the method docstring), and chunked iteration;
* ``CampusMobilityModel.stream_visits`` / ``BusMobilityModel.stream_visits``
  (defined in :mod:`repro.mobility.synthetic`) produce such streams from
  per-node generators merged with ``heapq.merge`` — O(nodes) memory
  instead of O(records);
* a subarea partitioner (:func:`landmark_partition`,
  :func:`partition_records`) that splits one stream into per-shard streams,
  inserting explicit :class:`~repro.mobility.trace.Transit` records at
  shard boundaries — the only cross-shard traffic, per the paper's
  inter-landmark flow model.
"""

from __future__ import annotations

import heapq
import math
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.mobility.trace import ReplayEvent, Trace, Transit, VisitRecord

__all__ = [
    "TraceStream",
    "landmark_partition",
    "partition_records",
    "iter_shard_records",
]

#: a zero-argument factory returning a fresh, time-ordered record iterator;
#: called once per pass so a stream can be replayed without materializing
RecordSource = Callable[[], Iterable[VisitRecord]]


class TraceStream:
    """A re-iterable, time-ordered visit-record stream with explicit metadata.

    Duck-types the :class:`~repro.mobility.trace.Trace` surface the engine
    reads (``name``/``nodes``/``landmarks``/``start_time``/``end_time``/
    ``duration``/``n_nodes``/``n_landmarks``/``replay_events``/``__len__``)
    without holding the records: each pass re-invokes the ``source``
    factory, so a generated stream costs O(open visits) memory per pass.

    Records must arrive in sorted order (the :class:`VisitRecord` ordering);
    :meth:`iter_records` enforces this so a mis-ordered source fails loudly
    instead of silently corrupting the event schedule.
    """

    def __init__(
        self,
        source: RecordSource,
        *,
        name: str = "stream",
        start_time: float,
        end_time: float,
        nodes: Sequence[int],
        landmarks: Sequence[int],
        n_records: int,
    ) -> None:
        self._source = source
        self.name = name
        self.start_time = float(start_time)
        self.end_time = float(end_time)
        self.nodes: Tuple[int, ...] = tuple(sorted(set(int(n) for n in nodes)))
        self.landmarks: Tuple[int, ...] = tuple(
            sorted(set(int(lm) for lm in landmarks))
        )
        if n_records < 0:
            raise ValueError(f"n_records must be >= 0, got {n_records}")
        self._n_records = int(n_records)

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceStream":
        """Wrap a materialized trace (metadata is already known)."""
        return cls(
            lambda: iter(trace.records),
            name=trace.name,
            start_time=trace.start_time,
            end_time=trace.end_time,
            nodes=trace.nodes,
            landmarks=trace.landmarks,
            n_records=len(trace),
        )

    @classmethod
    def from_source(cls, source: RecordSource, *, name: str = "stream") -> "TraceStream":
        """Build a stream from a record factory, scanning once for metadata.

        The scan holds only the node/landmark id sets — O(nodes + landmarks)
        memory — and validates ordering as it goes.
        """
        nodes: set = set()
        landmarks: set = set()
        n = 0
        start = math.inf
        end = -math.inf
        prev: Optional[VisitRecord] = None
        for rec in source():
            if prev is not None and rec < prev:
                raise ValueError(
                    f"record source for {name!r} is not sorted: "
                    f"{rec} after {prev}"
                )
            prev = rec
            nodes.add(rec.node)
            landmarks.add(rec.landmark)
            if rec.start < start:
                start = rec.start
            if rec.end > end:
                end = rec.end
            n += 1
        if n == 0:
            start = end = 0.0
        return cls(
            source,
            name=name,
            start_time=start,
            end_time=end,
            nodes=sorted(nodes),
            landmarks=sorted(landmarks),
            n_records=n,
        )

    def materialize(self) -> Trace:
        """Collapse the stream into a materialized :class:`Trace`."""
        return Trace(list(self.iter_records()), name=self.name, presorted=True)

    # -- Trace-compatible metadata ----------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_landmarks(self) -> int:
        return len(self.landmarks)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def __len__(self) -> int:
        return self._n_records

    # -- iteration --------------------------------------------------------------------
    def iter_records(self) -> Iterator[VisitRecord]:
        """One fresh pass over the records, verifying sorted order."""
        prev: Optional[VisitRecord] = None
        for rec in self._source():
            if prev is not None and rec < prev:
                raise ValueError(
                    f"record source for {self.name!r} is not sorted: "
                    f"{rec} after {prev}"
                )
            prev = rec
            yield rec

    def __iter__(self) -> Iterator[VisitRecord]:
        return self.iter_records()

    def iter_chunks(self, size: int) -> Iterator[List[VisitRecord]]:
        """The stream in bounded record batches (the last may be short)."""
        if size <= 0:
            raise ValueError(f"chunk size must be positive, got {size}")
        chunk: List[VisitRecord] = []
        for rec in self.iter_records():
            chunk.append(rec)
            if len(chunk) >= size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def replay_events(self, start_kind: int, end_kind: int) -> Iterator[ReplayEvent]:
        """The engine's visit events, streamed in globally sorted order.

        Yields ``(time, kind, seq, record)`` tuples with the same sequence
        numbering as :meth:`Trace.replay_events` (record ``i`` gets seqs
        ``2i``/``2i+1``), but already in ``(time, kind, seq)`` sort order so
        the engine can consume them without a global sort.

        Correctness: records stream in start order, so the only events that
        can sort before a start event not yet seen are the *end* events of
        already-open visits.  Those are held in a min-heap; before emitting
        record ``i``'s start we push its own end (a zero-length visit's end
        sorts *before* its start at equal time, since ``end_kind <
        start_kind``) and drain every held event that orders below
        ``(start, start_kind, 2i)``.  The heap holds one entry per open
        visit — O(concurrent visits), not O(records).

        Raises the same :class:`ValueError` as ``Trace.replay_events`` on
        non-monotonic or NaN timestamps.
        """
        if not end_kind < start_kind:
            raise ValueError(
                f"streamed replay needs end_kind < start_kind "
                f"(got {end_kind} >= {start_kind}): ends at equal timestamps "
                "must sort before starts"
            )
        heap: List[ReplayEvent] = []
        seq = 0
        prev_start = -math.inf
        i = 0
        for rec in self._source():
            # negated >= so NaN timestamps (all comparisons False) are
            # caught too, matching Trace.replay_events
            if not (rec.start >= prev_start):
                raise ValueError(
                    f"non-monotonic visit times in stream {self.name!r}: "
                    f"record {i} starts at {rec.start} after a record "
                    f"starting at {prev_start}"
                )
            if not (rec.end >= rec.start):
                raise ValueError(
                    f"non-monotonic visit times in stream {self.name!r}: "
                    f"record {i} ends at {rec.end}, before its start "
                    f"{rec.start}"
                )
            prev_start = rec.start
            start_ev: ReplayEvent = (rec.start, start_kind, seq, rec)
            heapq.heappush(heap, (rec.end, end_kind, seq + 1, rec))
            # tuple compare never reaches the record: seqs are unique
            while heap and heap[0] < start_ev:
                yield heapq.heappop(heap)
            yield start_ev
            seq += 2
            i += 1
        while heap:
            yield heapq.heappop(heap)


# ---------------------------------------------------------------------------
# Subarea partitioning
# ---------------------------------------------------------------------------


def landmark_partition(
    visit_counts: Mapping[int, int], n_shards: int
) -> Dict[int, int]:
    """Assign each landmark (subarea) to a shard, balancing visit load.

    Deterministic greedy bin-packing: landmarks in decreasing visit-count
    order (ties by landmark id) each go to the currently lightest shard
    (ties by shard index).  Every shard is guaranteed at least one landmark
    when ``n_shards <= len(visit_counts)``; more shards than landmarks is an
    error — a shard with no subarea has nothing to simulate.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if n_shards > len(visit_counts):
        raise ValueError(
            f"cannot split {len(visit_counts)} landmark(s) into "
            f"{n_shards} shards"
        )
    loads = [0] * n_shards
    assignment: Dict[int, int] = {}
    ordered = sorted(visit_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    for lm, count in ordered:
        shard = min(range(n_shards), key=lambda s: (loads[s], s))
        assignment[lm] = shard
        loads[shard] += count
    return assignment


ShardItem = Union[VisitRecord, Transit]


def partition_records(
    records: Iterable[VisitRecord], shard_of: Mapping[int, int]
) -> Iterator[Tuple[int, ShardItem]]:
    """Split a sorted record stream into per-shard tagged streams.

    One pass, O(nodes) state.  Yields ``(shard, item)`` pairs where an item
    is either a :class:`VisitRecord` (tagged with its landmark's shard) or
    an explicit :class:`Transit` handoff record emitted when consecutive
    visits of one node land on *different* shards — tagged to both sides,
    so the departing shard sees its export and the arriving shard its
    import.  Consecutive same-landmark visits form no transit, matching
    :meth:`Trace.transits`.

    Assumes per-node visits do not overlap (true for every stream the
    mobility models produce); overlap resolution for arbitrary traces lives
    in the sharded-run coordinator, which validates before splitting.
    """
    last: Dict[int, VisitRecord] = {}
    for rec in records:
        shard = shard_of[rec.landmark]
        prev = last.get(rec.node)
        if prev is not None and prev.landmark != rec.landmark:
            prev_shard = shard_of[prev.landmark]
            if prev_shard != shard:
                transit = Transit(
                    node=rec.node,
                    src=prev.landmark,
                    dst=rec.landmark,
                    depart=prev.end,
                    arrive=rec.start,
                )
                yield prev_shard, transit
                yield shard, transit
        last[rec.node] = rec
        yield shard, rec


def iter_shard_records(
    records: Iterable[VisitRecord], shard_of: Mapping[int, int], shard: int
) -> Iterator[ShardItem]:
    """One shard's view of a partitioned stream (records + boundary transits)."""
    for sh, item in partition_records(records, shard_of):
        if sh == shard:
            yield item
