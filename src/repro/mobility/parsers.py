"""Parsers for raw mobility logs (DART-style and DNET-style).

We cannot ship the proprietary Dartmouth (DART) and DieselNet (DNET) traces,
so the synthetic mobility models in :mod:`repro.mobility.synthetic` emit raw
logs in the same *shape* as the originals, and these parsers + the
preprocessing pipeline recover clean :class:`~repro.mobility.trace.Trace`
objects — exercising the exact code path the paper describes in
Section III-B.1 (merging neighbouring records, dropping short connections,
dropping inactive nodes, clustering APs into landmarks).

Formats
-------
DART-style (campus WLAN association log), one event per line::

    <node_id>,<ap_name>,<start_unix>,<end_unix>

DNET-style (bus AP-scan log with GPS), one sighting per line::

    <bus_id>,<ap_id>,<lat>,<lon>,<start_unix>,<end_unix>
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, TextIO, Tuple, Union

from repro.mobility.trace import VisitRecord


@dataclass(frozen=True)
class ApSighting:
    """A raw AP association record with coordinates (DNET-style)."""

    node: int
    ap: str
    lat: float
    lon: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"sighting ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RawAssociation:
    """A raw AP association record without coordinates (DART-style)."""

    node: int
    ap: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"association ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


ParseError = ValueError


def _lines(source: Union[str, TextIO, Iterable[str]]) -> Iterable[str]:
    if isinstance(source, str):
        return source.splitlines()
    return source


def parse_dart_log(source: Union[str, TextIO, Iterable[str]]) -> List[RawAssociation]:
    """Parse a DART-style association log.

    Blank lines and lines starting with ``#`` are skipped.  Malformed lines
    raise :class:`ParseError` with the 1-based line number.
    """
    out: List[RawAssociation] = []
    for lineno, line in enumerate(_lines(source), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) != 4:
            raise ParseError(f"line {lineno}: expected 4 fields, got {len(parts)}")
        try:
            node = int(parts[0])
            ap = parts[1]
            start = float(parts[2])
            end = float(parts[3])
        except ValueError as exc:
            raise ParseError(f"line {lineno}: {exc}") from exc
        out.append(RawAssociation(node=node, ap=ap, start=start, end=end))
    return out


def parse_dnet_log(source: Union[str, TextIO, Iterable[str]]) -> List[ApSighting]:
    """Parse a DNET-style AP sighting log with GPS coordinates."""
    out: List[ApSighting] = []
    for lineno, line in enumerate(_lines(source), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) != 6:
            raise ParseError(f"line {lineno}: expected 6 fields, got {len(parts)}")
        try:
            out.append(
                ApSighting(
                    node=int(parts[0]),
                    ap=parts[1],
                    lat=float(parts[2]),
                    lon=float(parts[3]),
                    start=float(parts[4]),
                    end=float(parts[5]),
                )
            )
        except ValueError as exc:
            raise ParseError(f"line {lineno}: {exc}") from exc
    return out


def write_dart_log(records: Iterable[RawAssociation]) -> str:
    """Serialise associations back to the DART-style text format."""
    lines = ["# node,ap,start,end"]
    lines.extend(f"{r.node},{r.ap},{r.start:.1f},{r.end:.1f}" for r in records)
    return "\n".join(lines) + "\n"


def write_dnet_log(records: Iterable[ApSighting]) -> str:
    """Serialise sightings back to the DNET-style text format."""
    lines = ["# bus,ap,lat,lon,start,end"]
    lines.extend(
        f"{r.node},{r.ap},{r.lat:.6f},{r.lon:.6f},{r.start:.1f},{r.end:.1f}"
        for r in records
    )
    return "\n".join(lines) + "\n"


def associations_to_visits(
    associations: Iterable[RawAssociation],
    ap_to_landmark: Dict[str, int],
) -> List[VisitRecord]:
    """Map raw AP associations onto landmark visit records.

    APs missing from ``ap_to_landmark`` are dropped (the paper removes APs
    that "did not appear frequently").
    """
    out: List[VisitRecord] = []
    for rec in associations:
        lm = ap_to_landmark.get(rec.ap)
        if lm is None:
            continue
        out.append(VisitRecord(start=rec.start, end=rec.end, node=rec.node, landmark=lm))
    return out


def sightings_to_associations(
    sightings: Iterable[ApSighting],
) -> Tuple[List[RawAssociation], Dict[str, Tuple[float, float]]]:
    """Strip coordinates from sightings, returning associations + AP positions."""
    assocs: List[RawAssociation] = []
    coords: Dict[str, Tuple[float, float]] = {}
    for s in sightings:
        assocs.append(RawAssociation(node=s.node, ap=s.ap, start=s.start, end=s.end))
        coords[s.ap] = (s.lat, s.lon)
    return assocs, coords
