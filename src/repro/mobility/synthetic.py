"""Synthetic mobility models substituting for the paper's proprietary traces.

The paper evaluates on two real traces we cannot redistribute:

* **DART** — Dartmouth campus WLAN logs (320 nodes / 159 landmarks after
  cleaning, ~119 days), students moving between buildings;
* **DNET** — UMass DieselNet bus logs (34 buses / 18 landmarks, ~26 days),
  buses cycling fixed routes past roadside APs.

Per the substitution rule, :class:`CampusMobilityModel` and
:class:`BusMobilityModel` generate traces with the same structural properties
the paper's design rests on:

* **O1** — each landmark is *frequently* visited by only a small node subset
  (community structure: departments, dorms; buses on their own routes);
* **O2** — a few transit links carry most of the flow;
* **O3** — matching transit links (both directions) have symmetric bandwidth
  (routine movement is a closed walk over the day);
* **O4** — per-time-unit link bandwidth is stable around its mean, except
  during holidays (campus model) — reproducing Fig. 4's Thanksgiving and
  Christmas dips.

Both models can emit *raw* logs (with missing records and spurious short
connections) so the full preprocessing pipeline of the paper is exercised;
missing records are also what makes the order-1 Markov predictor beat
order-2/3, as the paper observes in Fig. 6(a).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.parsers import ApSighting, RawAssociation
from repro.mobility.preprocess import PreprocessPipeline
from repro.mobility.stream import TraceStream
from repro.mobility.trace import SECONDS_PER_DAY, Trace, VisitRecord, hours
from repro.utils.validation import require_positive

__all__ = [
    "CampusConfig",
    "CampusMobilityModel",
    "BusConfig",
    "BusMobilityModel",
    "DeploymentConfig",
    "CampusDeploymentModel",
    "dart_like",
    "dnet_like",
    "deployment_trace",
]


# ---------------------------------------------------------------------------
# Campus (DART-like) model
# ---------------------------------------------------------------------------


@dataclass
class CampusConfig:
    """Parameters of the campus mobility generator.

    The defaults are the "small" preset used by tests and scaled benchmarks;
    :func:`dart_like` exposes presets, including the paper-scale one.
    """

    n_nodes: int = 60
    n_departments: int = 6
    buildings_per_department: int = 2
    n_dorms: int = 6
    n_dining: int = 2
    n_misc: int = 2  # gyms, auditoriums - visited rarely, by anyone
    days: int = 40
    #: inclusive day ranges with strongly reduced mobility (holidays)
    holidays: Sequence[Tuple[int, int]] = ((18, 21),)
    weekend_activity: float = 0.45
    holiday_activity: float = 0.08
    #: mean number of daytime movements on a full-activity weekday
    visits_per_day: float = 7.0
    #: probability a routine step is replaced by a random excursion
    deviation_prob: float = 0.08
    #: fraction of excursions that go to a uniformly random landmark (rather
    #: than a preferred one) - occasional campus-wide wandering
    explore_frac: float = 0.2
    #: probability that a visit is actually logged (device on) - missing
    #: records are what degrade high-order Markov predictors (Fig. 6a)
    log_prob: float = 0.85
    #: rate of spurious short associations per node per day in the raw log
    noise_rate: float = 1.5
    routine_length: int = 6

    @property
    def n_landmarks(self) -> int:
        return (
            1  # library
            + self.n_departments * self.buildings_per_department
            + self.n_dorms
            + self.n_dining
            + self.n_misc
        )


class CampusMobilityModel:
    """Community-structured student mobility over campus buildings.

    Every node belongs to a department and a dorm.  It owns a daily *routine*
    — a canonical sequence of landmarks (dorm -> class -> dining -> class ->
    library -> dorm, individual per node) — and each day replays the routine
    with per-step deviations, weekend/holiday thinning, and missing-record
    noise.  The routine is what gives the order-1 Markov predictor its
    60-80 % accuracy, matching Fig. 6.
    """

    LIBRARY = 0

    def __init__(self, config: Optional[CampusConfig] = None, seed: int = 0) -> None:
        self.config = config or CampusConfig()
        cfg = self.config
        require_positive("n_nodes", cfg.n_nodes)
        require_positive("days", cfg.days)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)

        # --- landmark layout ------------------------------------------------
        lm = 1
        self.department_buildings: List[List[int]] = []
        for _ in range(cfg.n_departments):
            self.department_buildings.append(
                list(range(lm, lm + cfg.buildings_per_department))
            )
            lm += cfg.buildings_per_department
        self.dorms = list(range(lm, lm + cfg.n_dorms))
        lm += cfg.n_dorms
        self.dining = list(range(lm, lm + cfg.n_dining))
        lm += cfg.n_dining
        self.misc = list(range(lm, lm + cfg.n_misc))
        lm += cfg.n_misc
        self.n_landmarks = lm

        # --- node membership --------------------------------------------------
        self.node_department = self.rng.integers(0, cfg.n_departments, cfg.n_nodes)
        self.node_dorm = np.array(
            [self.dorms[i % cfg.n_dorms] for i in range(cfg.n_nodes)]
        )
        self.rng.shuffle(self.node_dorm)
        # hub-and-spoke day structure: the hub is the node's main department
        # building; spokes (library, one preferred dining hall, the other
        # department buildings, ...) carry skewed per-node weights.  Returns
        # to the hub make matching transit links symmetric (O3) and keep
        # order-1 transitions predictable; the skewed weights give each
        # landmark a small set of frequent visitors (O1).
        self.node_hub = np.zeros(cfg.n_nodes, dtype=np.int64)
        self.node_spokes: List[List[int]] = []
        self.node_spoke_weights: List[np.ndarray] = []
        for n in range(cfg.n_nodes):
            dept = self.department_buildings[self.node_department[n]]
            self.node_hub[n] = dept[0]
            spokes = [self.LIBRARY]
            spokes.append(int(self.rng.choice(self.dining)))
            spokes.extend(dept[1:])
            if self.misc:
                spokes.append(int(self.rng.choice(self.misc)))
            self.node_spokes.append(spokes)
            # Dirichlet with small alpha => strongly skewed personal tastes
            w = self.rng.dirichlet(np.full(len(spokes), 0.25))
            self.node_spoke_weights.append(w)

    # -- construction helpers --------------------------------------------------
    def _day_sequence(
        self, node: int, rng: Optional[np.random.Generator] = None
    ) -> List[int]:
        """One day's landmark sequence: dorm -> (hub -> spoke)* -> dorm.

        Spokes are drawn from the node's personal weights; with probability
        ``deviation_prob`` a spoke is replaced by an excursion (usually a
        preferred landmark, sometimes anywhere on campus).  The spoke ->
        hub return keeps order-1 transitions predictable and matching links
        symmetric; missing log records later corrupt longer contexts more,
        reproducing the paper's k=1 superiority (Fig. 6a).
        """
        cfg = self.config
        if rng is None:
            rng = self.rng
        dorm = int(self.node_dorm[node])
        hub = int(self.node_hub[node])
        spokes = self.node_spokes[node]
        weights = self.node_spoke_weights[node]
        n_excursions = max(1, int(rng.poisson((cfg.routine_length - 2) / 2.0)))
        # mornings sometimes start at a spoke, evenings sometimes end from
        # one: the variation keeps matching links symmetric in aggregate
        # while denying order-2 contexts a reliable day-boundary signal
        seq = [dorm]
        if rng.random() < 0.85:
            seq.append(hub)
        for i in range(n_excursions):
            if rng.random() < cfg.deviation_prob:
                if rng.random() < cfg.explore_frac:
                    spoke = int(rng.integers(0, self.n_landmarks))
                else:
                    spoke = spokes[int(rng.integers(0, len(spokes)))]
            else:
                spoke = spokes[int(rng.choice(len(spokes), p=weights))]
            if spoke != seq[-1]:
                seq.append(spoke)
            if i < n_excursions - 1 or rng.random() < 0.55:
                seq.append(hub)
        seq.append(dorm)
        # drop consecutive duplicates (hub == dorm etc.)
        out = [seq[0]]
        for lm in seq[1:]:
            if lm != out[-1]:
                out.append(lm)
        return out

    def _activity(self, day: int) -> float:
        cfg = self.config
        for lo, hi in cfg.holidays:
            if lo <= day <= hi:
                return cfg.holiday_activity
        if day % 7 in (5, 6):  # weekend
            return cfg.weekend_activity
        return 1.0

    # -- generation ----------------------------------------------------------------
    def generate_visits(self) -> List[VisitRecord]:
        """Generate clean landmark-level visit records (no logging noise)."""
        cfg = self.config
        rng = self.rng
        records: List[VisitRecord] = []
        for node in range(cfg.n_nodes):
            for day in range(cfg.days):
                act = self._activity(day)
                if rng.random() > act and act < 1.0:
                    # node stays home: one long dorm visit, maybe unlogged
                    t0 = day * SECONDS_PER_DAY + hours(9) + rng.uniform(0, hours(2))
                    records.append(
                        VisitRecord(
                            start=t0,
                            end=t0 + hours(10),
                            node=node,
                            landmark=int(self.node_dorm[node]),
                        )
                    )
                    continue
                t = day * SECONDS_PER_DAY + hours(7.5) + rng.uniform(0, hours(1.5))
                for lm in self._day_sequence(node):
                    dwell = float(rng.lognormal(mean=np.log(hours(1.0)), sigma=0.5))
                    dwell = min(dwell, hours(4))
                    records.append(
                        VisitRecord(start=t, end=t + dwell, node=node, landmark=int(lm))
                    )
                    travel = rng.uniform(4 * 60, 18 * 60)
                    t += dwell + travel
        return sorted(records)

    # -- streaming generation -------------------------------------------------------
    def _node_day_records(
        self, node: int, day: int, rng: np.random.Generator
    ) -> List[VisitRecord]:
        """One node's visit records for one day (same scheme as
        :meth:`generate_visits`, driven by the given RNG)."""
        cfg = self.config
        act = self._activity(day)
        if rng.random() > act and act < 1.0:
            t0 = day * SECONDS_PER_DAY + hours(9) + rng.uniform(0, hours(2))
            return [
                VisitRecord(
                    start=t0,
                    end=t0 + hours(10),
                    node=node,
                    landmark=int(self.node_dorm[node]),
                )
            ]
        records: List[VisitRecord] = []
        t = day * SECONDS_PER_DAY + hours(7.5) + rng.uniform(0, hours(1.5))
        for lm in self._day_sequence(node, rng=rng):
            dwell = float(rng.lognormal(mean=np.log(hours(1.0)), sigma=0.5))
            dwell = min(dwell, hours(4))
            records.append(
                VisitRecord(start=t, end=t + dwell, node=node, landmark=int(lm))
            )
            travel = rng.uniform(4 * 60, 18 * 60)
            t += dwell + travel
        return records

    def _node_visit_stream(self, node: int) -> Iterator[VisitRecord]:
        """One node's records as a nondecreasing generator.

        Each node draws from its own RNG stream (``SeedSequence(seed,
        spawn_key=(node,))`` — the spawned child sequence of the model
        seed), so nodes can be generated independently and lazily.  A busy
        day can spill past midnight, so records are held in a small heap
        and released only once no later day can start before them (day
        ``d+1`` never starts before ``(d+1) * 86400 + 7.5 h``).
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(node,))
        )
        pending: List[VisitRecord] = []
        for day in range(self.config.days):
            for rec in self._node_day_records(node, day, rng):
                heapq.heappush(pending, rec)
            horizon = (day + 1) * SECONDS_PER_DAY + hours(7.5)
            while pending and pending[0].start < horizon:
                yield heapq.heappop(pending)
        while pending:
            yield heapq.heappop(pending)

    def stream_visits(self) -> Iterator[VisitRecord]:
        """Clean visit records as one time-ordered generator.

        Streaming counterpart of :meth:`generate_visits`: per-node record
        generators merged with ``heapq.merge``, holding O(nodes) records in
        memory instead of the whole trace.  Uses per-node spawned RNG
        streams, so the records differ from the single-RNG
        :meth:`generate_visits` draw order — same distribution, different
        sample; committed baselines built on ``generate_visits`` are
        untouched.  Deterministic in the model seed: same seed, same
        sequence, whether consumed lazily or materialized.
        """
        return heapq.merge(
            *(self._node_visit_stream(n) for n in range(self.config.n_nodes))
        )

    def trace_stream(self, name: str = "campus-stream") -> TraceStream:
        """The streamed visits as a re-iterable :class:`TraceStream`."""
        return TraceStream.from_source(self.stream_visits, name=name)

    def generate_raw_log(self) -> List[RawAssociation]:
        """Emit a DART-style raw association log with realistic defects.

        Defects: a fraction of visits are never logged (device off), and
        spurious sub-200 s associations appear at random buildings.  The
        preprocessing pipeline must clean both.
        """
        cfg = self.config
        rng = self.rng
        out: List[RawAssociation] = []
        for rec in self.generate_visits():
            if rng.random() > cfg.log_prob:
                continue
            out.append(
                RawAssociation(
                    node=rec.node,
                    ap=f"bldg{rec.landmark:03d}",
                    start=rec.start,
                    end=rec.end,
                )
            )
        n_noise = rng.poisson(cfg.noise_rate * cfg.n_nodes * cfg.days)
        horizon = cfg.days * SECONDS_PER_DAY
        for _ in range(int(n_noise)):
            t0 = rng.uniform(0, horizon - 200)
            out.append(
                RawAssociation(
                    node=int(rng.integers(0, cfg.n_nodes)),
                    ap=f"bldg{int(rng.integers(0, self.n_landmarks)):03d}",
                    start=t0,
                    end=t0 + rng.uniform(5, 180),
                )
            )
        return sorted(out, key=lambda r: (r.start, r.node))


# ---------------------------------------------------------------------------
# Bus (DNET-like) model
# ---------------------------------------------------------------------------


@dataclass
class BusConfig:
    """Parameters of the bus-network mobility generator."""

    n_buses: int = 34
    n_stops: int = 18
    n_routes: int = 6
    days: int = 26
    route_length_range: Tuple[int, int] = (4, 8)
    aps_per_stop_range: Tuple[int, int] = (1, 3)
    dwell_range: Tuple[float, float] = (120.0, 420.0)  # seconds at a stop
    travel_range: Tuple[float, float] = (420.0, 1200.0)  # seconds between stops
    service_start_hour: float = 6.0
    service_end_hour: float = 22.0
    #: probability a stop visit goes unlogged (roadside APs not dedicated)
    miss_prob: float = 0.12
    #: probability a sighting logs an AP of the *next* stop (radio overlap) -
    #: the paper attributes DNET's lower prediction accuracy to exactly this
    #: kind of AP ambiguity
    overlap_prob: float = 0.08
    #: per-bus per-day probability of an unscheduled garage/maintenance trip
    #: (the dead-end scenario of Section IV-E.1); with the default AP-count
    #: filter the rare garage APs are cleaned out of the trace - raise this
    #: (and relax the filter) to study dead ends, as the Table VI bench does
    garage_prob: float = 0.03
    garage_stay_range: Tuple[float, float] = (hours(5), hours(12))
    #: whether the whole fleet shares one depot (typical for a small transit
    #: agency).  A shared garage sees traffic from every route, so packets a
    #: dead-ended bus hands over can leave with the next bus of any route -
    #: the recovery path the dead-end extension (IV-E.1) relies on
    shared_garage: bool = True
    #: per-bus per-day probability of a *breakdown*: the bus stalls for hours
    #: at a regular stop (still within radio range of the stop's APs).  This
    #: is the dead-end scenario the Table VI experiment uses - the stop has
    #: pass-through traffic, so handed-over packets can be re-routed
    breakdown_prob: float = 0.0
    breakdown_stay_range: Tuple[float, float] = (hours(4), hours(9))
    #: probability a bus runs its *main* route on a given day; otherwise it
    #: is rostered onto another route (vehicles rotate in real transit
    #: systems, which spreads every bus's visiting support across stops
    #: while keeping the visiting skew of observation O1)
    main_route_prob: float = 0.9
    #: probability the bus drives its *preferred* direction on a given day.
    #: Half the fleet prefers the forward loop and half the reverse, so the
    #: aggregate flow on matching transit links is symmetric (O3) while each
    #: individual bus stays predictable
    direction_consistency: float = 0.95
    #: grid spacing between stops in km (must exceed the 1.5 km AP-cluster
    #: radius so distinct stops stay distinct landmarks)
    stop_spacing_km: float = 2.2


class BusMobilityModel:
    """Buses cycling fixed routes past roadside APs (DieselNet-like).

    Stops sit on a jittered grid with >1.5 km spacing; each stop hosts 1-3
    APs within ~150 m, so the AP-clustering stage of preprocessing collapses
    them back into one landmark per stop.  Each route also has a *garage*
    stop where buses occasionally disappear for hours — the dead-end case.
    """

    def __init__(self, config: Optional[BusConfig] = None, seed: int = 0) -> None:
        self.config = config or BusConfig()
        cfg = self.config
        require_positive("n_buses", cfg.n_buses)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)

        # --- stop geography: jittered grid around Amherst, MA --------------------
        side = int(np.ceil(np.sqrt(cfg.n_stops + cfg.n_routes)))
        base_lat, base_lon = 42.375, -72.52
        km_per_deg_lat = 111.0
        km_per_deg_lon = 111.0 * np.cos(np.radians(base_lat))
        coords: List[Tuple[float, float]] = []
        for i in range(cfg.n_stops + cfg.n_routes):  # extra cells host garages
            r, c = divmod(i, side)
            jitter = self.rng.uniform(-0.15, 0.15, 2)
            coords.append(
                (
                    base_lat + (r * cfg.stop_spacing_km + jitter[0]) / km_per_deg_lat,
                    base_lon + (c * cfg.stop_spacing_km + jitter[1]) / km_per_deg_lon,
                )
            )
        self.stop_coords = coords[: cfg.n_stops]
        self.garage_coords = coords[cfg.n_stops :]

        # --- APs per stop ------------------------------------------------------------
        self.stop_aps: List[List[str]] = []
        self.ap_coords: Dict[str, Tuple[float, float]] = {}
        for s, (lat, lon) in enumerate(self.stop_coords):
            n_aps = int(self.rng.integers(cfg.aps_per_stop_range[0], cfg.aps_per_stop_range[1] + 1))
            aps = []
            for a in range(n_aps):
                name = f"ap_s{s:02d}_{a}"
                d = self.rng.uniform(-0.0012, 0.0012, 2)  # ~130 m jitter
                self.ap_coords[name] = (lat + d[0], lon + d[1])
                aps.append(name)
            self.stop_aps.append(aps)
        self.garage_aps: List[str] = []
        for g, (lat, lon) in enumerate(self.garage_coords):
            name = f"ap_g{g:02d}"
            self.ap_coords[name] = (lat, lon)
            self.garage_aps.append(name)

        # --- routes ----------------------------------------------------------------
        self.routes: List[List[int]] = []
        stops = list(range(cfg.n_stops))
        for r in range(cfg.n_routes):
            lo, hi = cfg.route_length_range
            length = int(self.rng.integers(lo, hi + 1))
            # routes share stops: draw a random walk over nearby stops so the
            # landmark graph is connected and some links are popular (O2)
            start = stops[r % len(stops)]
            route = [start]
            while len(route) < length:
                cur = route[-1]
                # prefer geographically near stops
                dists = [
                    (abs(self.stop_coords[s][0] - self.stop_coords[cur][0])
                     + abs(self.stop_coords[s][1] - self.stop_coords[cur][1]), s)
                    for s in stops
                    if s != cur and s not in route[-2:]
                ]
                dists.sort()
                cand = [s for _, s in dists[:4]]
                route.append(int(self.rng.choice(cand)))
            self.routes.append(route)
        self.bus_route = [r % cfg.n_routes for r in range(cfg.n_buses)]

    def generate_sightings(self) -> List[ApSighting]:
        """Emit the raw DNET-style AP sighting log (with defects)."""
        cfg = self.config
        rng = self.rng
        out: List[ApSighting] = []
        for bus in range(cfg.n_buses):
            main_route = self.bus_route[bus]
            if cfg.shared_garage:
                garage_ap = self.garage_aps[0]
            else:
                garage_ap = self.garage_aps[main_route % len(self.garage_aps)]
            pos = int(rng.integers(0, 32))
            # alternate direction within each route's fleet: buses are dealt
            # to routes round-robin, so the parity of bus // n_routes
            # alternates *within* a route rather than *across* routes
            preferred_reverse = (bus // max(1, cfg.n_routes)) % 2 == 1
            for day in range(cfg.days):
                # daily rostering: usually the main route, sometimes another
                if cfg.n_routes > 1 and rng.random() >= cfg.main_route_prob:
                    others = [r for r in range(cfg.n_routes) if r != main_route]
                    route = self.routes[others[int(rng.integers(0, len(others)))]]
                else:
                    route = self.routes[main_route]
                reverse = preferred_reverse == (rng.random() < cfg.direction_consistency)
                if reverse:
                    route = route[::-1]
                t = day * SECONDS_PER_DAY + hours(cfg.service_start_hour)
                t += rng.uniform(0, 1200)  # staggered pull-out
                day_end = day * SECONDS_PER_DAY + hours(cfg.service_end_hour)
                # unscheduled maintenance happens on a few days per month:
                # pick the step at which the bus will pull into the garage
                garage_step = -1
                if rng.random() < cfg.garage_prob:
                    garage_step = int(rng.integers(5, 30))
                breakdown_step = -1
                if rng.random() < cfg.breakdown_prob:
                    breakdown_step = int(rng.integers(5, 30))
                step = 0
                while t < day_end:
                    stop = route[pos % len(route)]
                    dwell = rng.uniform(*cfg.dwell_range)
                    if rng.random() >= cfg.miss_prob:
                        # radio overlap: occasionally log the next stop's AP
                        if rng.random() < cfg.overlap_prob:
                            log_stop = route[(pos + 1) % len(route)]
                        else:
                            log_stop = stop
                        aps = self.stop_aps[log_stop]
                        ap = aps[int(rng.integers(0, len(aps)))]
                        lat, lon = self.ap_coords[ap]
                        out.append(
                            ApSighting(
                                node=bus, ap=ap, lat=lat, lon=lon,
                                start=t, end=t + dwell,
                            )
                        )
                    t += dwell + rng.uniform(*cfg.travel_range)
                    pos += 1
                    step += 1
                    if step == breakdown_step:
                        # breakdown: the bus stalls at the stop it just
                        # reached, still associated with the stop's AP
                        stall = rng.uniform(*cfg.breakdown_stay_range)
                        stop_now = route[pos % len(route)]
                        aps = self.stop_aps[stop_now]
                        ap = aps[int(rng.integers(0, len(aps)))]
                        lat, lon = self.ap_coords[ap]
                        out.append(
                            ApSighting(
                                node=bus, ap=ap, lat=lat, lon=lon,
                                start=t, end=t + stall,
                            )
                        )
                        t += stall
                    if step == garage_step:
                        # unscheduled maintenance: long silent stay at garage
                        stay = rng.uniform(*cfg.garage_stay_range)
                        lat, lon = self.ap_coords[garage_ap]
                        out.append(
                            ApSighting(
                                node=bus, ap=garage_ap, lat=lat, lon=lon,
                                start=t, end=t + stay,
                            )
                        )
                        t += stay
        return sorted(out, key=lambda s: (s.start, s.node))

    # -- streaming generation -------------------------------------------------------
    def _bus_visit_stream(self, bus: int) -> Iterator[VisitRecord]:
        """One bus's *clean* stop visits as a nondecreasing generator.

        Landmark ids are stop indices (``0..n_stops-1``) plus garage
        landmarks at ``n_stops + g``.  The motion model matches
        :meth:`generate_sightings` (rostering, direction preference,
        breakdowns, garage trips) but skips the radio-log defects (missed
        and overlapping sightings) — this is the mobility ground truth the
        preprocessing pipeline tries to recover.  Driven by the bus's own
        spawned RNG stream so buses generate independently; a breakdown or
        garage stay can spill past the service day, so records are released
        through a small heap once no later day can precede them.
        """
        cfg = self.config
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(bus,))
        )
        main_route = self.bus_route[bus]
        if cfg.shared_garage:
            garage_lm = cfg.n_stops
        else:
            garage_lm = cfg.n_stops + main_route % len(self.garage_aps)
        pos = int(rng.integers(0, 32))
        preferred_reverse = (bus // max(1, cfg.n_routes)) % 2 == 1
        pending: List[VisitRecord] = []
        for day in range(cfg.days):
            if cfg.n_routes > 1 and rng.random() >= cfg.main_route_prob:
                others = [r for r in range(cfg.n_routes) if r != main_route]
                route = self.routes[others[int(rng.integers(0, len(others)))]]
            else:
                route = self.routes[main_route]
            reverse = preferred_reverse == (rng.random() < cfg.direction_consistency)
            if reverse:
                route = route[::-1]
            t = day * SECONDS_PER_DAY + hours(cfg.service_start_hour)
            t += rng.uniform(0, 1200)
            day_end = day * SECONDS_PER_DAY + hours(cfg.service_end_hour)
            garage_step = -1
            if rng.random() < cfg.garage_prob:
                garage_step = int(rng.integers(5, 30))
            breakdown_step = -1
            if rng.random() < cfg.breakdown_prob:
                breakdown_step = int(rng.integers(5, 30))
            step = 0
            while t < day_end:
                stop = route[pos % len(route)]
                dwell = rng.uniform(*cfg.dwell_range)
                heapq.heappush(
                    pending,
                    VisitRecord(start=t, end=t + dwell, node=bus, landmark=stop),
                )
                t += dwell + rng.uniform(*cfg.travel_range)
                pos += 1
                step += 1
                if step == breakdown_step:
                    stall = rng.uniform(*cfg.breakdown_stay_range)
                    stop_now = route[pos % len(route)]
                    heapq.heappush(
                        pending,
                        VisitRecord(
                            start=t, end=t + stall, node=bus, landmark=stop_now
                        ),
                    )
                    t += stall
                if step == garage_step:
                    stay = rng.uniform(*cfg.garage_stay_range)
                    heapq.heappush(
                        pending,
                        VisitRecord(
                            start=t, end=t + stay, node=bus, landmark=garage_lm
                        ),
                    )
                    t += stay
            horizon = (day + 1) * SECONDS_PER_DAY + hours(cfg.service_start_hour)
            while pending and pending[0].start < horizon:
                yield heapq.heappop(pending)
        while pending:
            yield heapq.heappop(pending)

    def stream_visits(self) -> Iterator[VisitRecord]:
        """Clean stop-level visits for the whole fleet, time-ordered.

        Per-bus generators merged with ``heapq.merge`` — the streaming
        counterpart of the ``generate_sightings`` -> preprocessing path,
        minus the log defects.  Deterministic in the model seed and
        independent of ``generate_sightings``'s RNG consumption.
        """
        return heapq.merge(
            *(self._bus_visit_stream(b) for b in range(self.config.n_buses))
        )

    def trace_stream(self, name: str = "bus-stream") -> TraceStream:
        """The streamed fleet visits as a re-iterable :class:`TraceStream`."""
        return TraceStream.from_source(self.stream_visits, name=name)


# ---------------------------------------------------------------------------
# Campus deployment (Section V-C) model
# ---------------------------------------------------------------------------


@dataclass
class DeploymentConfig:
    """The real-deployment scenario: 9 phones, 8 buildings, library sink.

    Landmark ids follow Fig. 15: L0 is the library (paper's L1); L1-L4 are
    department buildings; L5-L7 are the student centre and dining halls.
    """

    n_nodes: int = 9
    days: int = 3
    #: which department building each student belongs to; the paper's
    #: students came from four departments, most from two of them
    node_department: Sequence[int] = (1, 1, 1, 2, 2, 2, 3, 4, 2)
    visits_per_day: float = 8.0
    deviation_prob: float = 0.15

    LIBRARY: int = 0
    DEPARTMENTS: Sequence[int] = (1, 2, 3, 4)
    SOCIAL: Sequence[int] = (5, 6, 7)

    @property
    def n_landmarks(self) -> int:
        return 8


class CampusDeploymentModel:
    """Small-deployment mobility: students oscillate dept <-> library."""

    def __init__(self, config: Optional[DeploymentConfig] = None, seed: int = 7) -> None:
        self.config = config or DeploymentConfig()
        self.rng = np.random.default_rng(seed)
        if len(self.config.node_department) != self.config.n_nodes:
            raise ValueError("node_department must list one department per node")

    def generate_visits(self) -> List[VisitRecord]:
        cfg = self.config
        rng = self.rng
        records: List[VisitRecord] = []
        for node in range(cfg.n_nodes):
            dept = cfg.node_department[node]
            # routine: class - library - dining - class - library
            routine = [dept, cfg.LIBRARY, int(rng.choice(cfg.SOCIAL)), dept, cfg.LIBRARY]
            for day in range(cfg.days):
                t = day * SECONDS_PER_DAY + hours(8) + rng.uniform(0, hours(1))
                prev = None
                for lm in routine:
                    if rng.random() < cfg.deviation_prob:
                        lm = int(rng.integers(0, cfg.n_landmarks))
                    if lm == prev:
                        continue
                    dwell = rng.uniform(hours(0.5), hours(2))
                    records.append(
                        VisitRecord(start=t, end=t + dwell, node=node, landmark=int(lm))
                    )
                    t += dwell + rng.uniform(300, 900)
                    prev = lm
        return sorted(records)


# ---------------------------------------------------------------------------
# Preset factories
# ---------------------------------------------------------------------------

_CAMPUS_PRESETS: Dict[str, CampusConfig] = {
    "tiny": CampusConfig(
        n_nodes=16, n_departments=3, buildings_per_department=1, n_dorms=3,
        n_dining=1, n_misc=1, days=14, holidays=((8, 9),), visits_per_day=6.0,
    ),
    "small": CampusConfig(),
    "medium": CampusConfig(
        n_nodes=120, n_departments=10, buildings_per_department=2, n_dorms=10,
        n_dining=3, n_misc=3, days=60, holidays=((20, 23), (40, 47)),
    ),
    # paper scale: 320 nodes / 159 landmarks / ~119 days
    "full": CampusConfig(
        n_nodes=320, n_departments=36, buildings_per_department=3, n_dorms=36,
        n_dining=8, n_misc=6, days=119, holidays=((25, 28), (52, 64)),
    ),
}

_BUS_PRESETS: Dict[str, BusConfig] = {
    "tiny": BusConfig(n_buses=8, n_stops=8, n_routes=3, days=8),
    "small": BusConfig(n_buses=16, n_stops=12, n_routes=4, days=14),
    # paper scale: 34 buses / 18 landmarks / 26 days
    "full": BusConfig(),
}


def _scaled_pipeline(cfg_days: int, n_nodes: int) -> PreprocessPipeline:
    """Pipeline with activity thresholds scaled to the synthetic trace size.

    The paper's absolute thresholds (500 records/node, 50 sightings/AP) suit
    multi-month traces; smaller presets use proportionally smaller cuts so
    the filters still bite without emptying the trace.
    """
    min_node_records = max(3, int(2 * cfg_days / 7))
    min_ap = max(3, int(cfg_days))
    # a central station is only worth deploying where nodes actually go:
    # require on the order of one visit per day
    min_lm_visits = max(5, int(cfg_days))
    return PreprocessPipeline(
        min_node_records=min_node_records,
        min_ap_count=min_ap,
        min_landmark_visits=min_lm_visits,
    )


def dart_like(scale: str = "small", seed: int = 0, *, preprocess: bool = True) -> Trace:
    """Build a DART-like campus trace at the given preset ``scale``.

    With ``preprocess=True`` (default) the model emits a raw association log
    which is then run through the full cleaning pipeline, exactly as the
    paper did with the real DART data.
    """
    if scale not in _CAMPUS_PRESETS:
        raise ValueError(f"unknown scale {scale!r}; options: {sorted(_CAMPUS_PRESETS)}")
    cfg = _CAMPUS_PRESETS[scale]
    model = CampusMobilityModel(cfg, seed=seed)
    name = f"DART-like[{scale}]"
    if not preprocess:
        return Trace(model.generate_visits(), name=name)
    raw = model.generate_raw_log()
    pipeline = _scaled_pipeline(cfg.days, cfg.n_nodes)
    return pipeline.run_dart(raw, name=name)


def dnet_like(scale: str = "small", seed: int = 0, *, preprocess: bool = True) -> Trace:
    """Build a DNET-like bus trace at the given preset ``scale``."""
    if scale not in _BUS_PRESETS:
        raise ValueError(f"unknown scale {scale!r}; options: {sorted(_BUS_PRESETS)}")
    cfg = _BUS_PRESETS[scale]
    model = BusMobilityModel(cfg, seed=seed)
    name = f"DNET-like[{scale}]"
    sightings = model.generate_sightings()
    if not preprocess:
        from repro.mobility.parsers import sightings_to_associations

        assocs, _ = sightings_to_associations(sightings)
        pipeline = PreprocessPipeline(min_node_records=0, min_ap_count=0)
        return pipeline.run_dart(assocs, name=name)
    pipeline = _scaled_pipeline(cfg.days, cfg.n_buses)
    return pipeline.run_dnet(sightings, name=name)


def deployment_trace(days: int = 3, seed: int = 7) -> Trace:
    """Build the Section V-C campus-deployment trace (9 nodes, 8 landmarks)."""
    cfg = DeploymentConfig(days=days)
    model = CampusDeploymentModel(cfg, seed=seed)
    return Trace(model.generate_visits(), name="deployment")
