"""Trace data model: landmark visit records and node transits.

A DTN mobility trace, after preprocessing, is a sequence of *visit records*:
node ``n`` was associated with landmark ``l`` from ``start`` to ``end``.  All
routing machinery in this library (DTN-FLOW and the baselines) consumes
traces in this form, mirroring how the paper preprocessed the DART and DNET
datasets (Section III-B.1).

Two derived notions:

* a **transit** is a movement of a node from one landmark to the next
  (consecutive visits of the same node at different landmarks);
* a **sojourn** is the time a node stays connected at one landmark
  (``end - start`` of a visit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

ReplayEvent = Tuple[float, int, int, "VisitRecord"]


@dataclass(frozen=True, order=True)
class VisitRecord:
    """One node↔landmark association interval.

    Ordering is by ``(start, end, node, landmark)`` so that a sorted list of
    records replays the trace in time order.
    """

    start: float
    end: float
    node: int
    landmark: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"visit ends before it starts: node={self.node} "
                f"landmark={self.landmark} [{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Transit:
    """A node's movement between two consecutive landmark visits."""

    node: int
    src: int
    dst: int
    depart: float  # time the node left ``src`` (end of previous visit)
    arrive: float  # time the node connected to ``dst``

    @property
    def travel_time(self) -> float:
        return self.arrive - self.depart


class Trace:
    """An immutable, time-sorted collection of :class:`VisitRecord`.

    Parameters
    ----------
    records:
        Visit records in any order; they are sorted on construction.
    name:
        Human-readable label ("DART-like", "DNET-like", ...).
    presorted:
        Promise that ``records`` is already in sorted order, skipping the
        O(n log n) re-sort.  Unpickling uses this (``__getstate__`` ships
        the already-sorted list), so every pool worker pays O(n), not
        O(n log n), per trace.

    Notes
    -----
    Node and landmark identifiers are arbitrary non-negative ints; use
    :meth:`n_nodes` / :meth:`n_landmarks` for the count of *distinct* ids and
    :func:`repro.mobility.preprocess.relabel_compact` to compact them.
    """

    def __init__(
        self,
        records: Iterable[VisitRecord],
        name: str = "trace",
        *,
        presorted: bool = False,
    ) -> None:
        self._records: List[VisitRecord] = (
            list(records) if presorted else sorted(records)
        )
        self.name = name
        self._nodes = tuple(sorted({r.node for r in self._records}))
        self._landmarks = tuple(sorted({r.landmark for r in self._records}))
        self._by_node: Dict[int, List[VisitRecord]] = {}
        for rec in self._records:
            self._by_node.setdefault(rec.node, []).append(rec)
        #: memoized replay schedules keyed by (start_kind, end_kind); safe
        #: because the record list is immutable after construction
        self._replay_cache: Dict[Tuple[int, int], Tuple[ReplayEvent, ...]] = {}
        #: number of schedule rebuilds (exposed so tests can assert the
        #: memoization actually skips work on repeated simulations)
        self.n_replay_builds: int = 0

    # -- pickling -----------------------------------------------------------------
    # Only the records and the name cross process boundaries; the sorted
    # indexes and the replay cache are rebuilt on unpickle.  This keeps the
    # payload the parallel executor ships to each worker as small as the
    # trace itself.
    def __getstate__(self) -> Dict[str, object]:
        return {"name": self.name, "records": self._records}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(  # type: ignore[misc]
            state["records"], name=state["name"], presorted=True  # type: ignore[arg-type]
        )

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[VisitRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> VisitRecord:
        return self._records[idx]

    # -- structure ----------------------------------------------------------------
    @property
    def records(self) -> Sequence[VisitRecord]:
        return tuple(self._records)

    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    @property
    def landmarks(self) -> Tuple[int, ...]:
        return self._landmarks

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def n_landmarks(self) -> int:
        return len(self._landmarks)

    @property
    def start_time(self) -> float:
        if not self._records:
            return 0.0
        return self._records[0].start

    @property
    def end_time(self) -> float:
        if not self._records:
            return 0.0
        return max(r.end for r in self._records)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def visits_of(self, node: int) -> Sequence[VisitRecord]:
        """All visits of ``node`` in time order (empty if unknown node)."""
        return tuple(self._by_node.get(node, ()))

    def visit_sequence(self, node: int) -> List[int]:
        """The landmark-id sequence visited by ``node`` (Markov input)."""
        return [r.landmark for r in self._by_node.get(node, ())]

    def replay_events(
        self, start_kind: int, end_kind: int
    ) -> Tuple[ReplayEvent, ...]:
        """The trace's visit events as ``(time, kind, seq, record)`` tuples.

        For each record, in record order, emits ``(start, start_kind, i)``
        then ``(end, end_kind, i+1)`` with a monotonically increasing ``seq``
        — exactly the stream the simulation engine folds into its event
        queue.  The result is memoized per ``(start_kind, end_kind)`` pair,
        so repeated simulations of the same trace skip the rebuild; callers
        must treat the returned tuple as read-only and continue their own
        sequence numbers from ``2 * len(trace)``.

        Raises
        ------
        ValueError
            If record times are non-monotonic (out-of-order or NaN start
            times, or a NaN end time).  Records are sorted on construction,
            so this only fires on corrupt timestamps — which would otherwise
            silently produce an out-of-order schedule.
        """
        key = (int(start_kind), int(end_kind))
        cached = self._replay_cache.get(key)
        if cached is not None:
            return cached
        events: List[ReplayEvent] = []
        counter = 0
        prev_start = -math.inf
        for i, rec in enumerate(self._records):
            # written as negated >= so NaN timestamps (all comparisons
            # False) are caught too, not just strict disorder
            if not (rec.start >= prev_start):
                raise ValueError(
                    f"non-monotonic visit times in trace {self.name!r}: "
                    f"record {i} starts at {rec.start} after a record "
                    f"starting at {prev_start}"
                )
            if not (rec.end >= rec.start):
                raise ValueError(
                    f"non-monotonic visit times in trace {self.name!r}: "
                    f"record {i} ends at {rec.end}, before its start "
                    f"{rec.start}"
                )
            prev_start = rec.start
            events.append((rec.start, start_kind, counter, rec))
            counter += 1
            events.append((rec.end, end_kind, counter, rec))
            counter += 1
        result = tuple(events)
        self._replay_cache[key] = result
        self.n_replay_builds += 1
        return result

    # -- derived quantities ---------------------------------------------------------
    def transits(self) -> List[Transit]:
        """All landmark-to-landmark transits, over all nodes, in node order.

        Consecutive visits at the *same* landmark do not form a transit (the
        preprocessing pipeline merges them, but a raw trace may still contain
        them; they are skipped here to keep the definition robust).
        """
        out: List[Transit] = []
        for node, visits in self._by_node.items():
            for prev, cur in zip(visits, visits[1:]):
                if prev.landmark == cur.landmark:
                    continue
                out.append(
                    Transit(
                        node=node,
                        src=prev.landmark,
                        dst=cur.landmark,
                        depart=prev.end,
                        arrive=cur.start,
                    )
                )
        return out

    def split_at(self, t: float) -> Tuple["Trace", "Trace"]:
        """Split into (records starting before ``t``, records starting at/after).

        Used to carve out the warm-up prefix (the paper uses the first 1/4 of
        each trace to initialise routing tables, Section V-A.1).
        """
        before = [r for r in self._records if r.start < t]
        after = [r for r in self._records if r.start >= t]
        return (
            Trace(before, name=f"{self.name}[:{t:g}]"),
            Trace(after, name=f"{self.name}[{t:g}:]"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(name={self.name!r}, records={len(self)}, "
            f"nodes={self.n_nodes}, landmarks={self.n_landmarks}, "
            f"span=[{self.start_time:g}, {self.end_time:g}])"
        )


SECONDS_PER_DAY = 86400.0


def days(x: float) -> float:
    """Convert days to seconds (trace timestamps are in seconds)."""
    return x * SECONDS_PER_DAY


def hours(x: float) -> float:
    """Convert hours to seconds."""
    return x * 3600.0
