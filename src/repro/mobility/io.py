"""Trace serialisation: CSV on disk, round-trippable.

A cleaned trace is four columns — ``node,landmark,start,end`` — plus a
comment header carrying the trace name.  This is the interchange format for
feeding *real* mobility data (your own WLAN logs, GPS check-ins, ...) into
the library, and for caching expensive synthetic generations.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import List, TextIO, Union

from repro.mobility.trace import Trace, VisitRecord

HEADER = "# repro-trace v1"


def dump_trace(trace: Trace, target: Union[str, Path, TextIO]) -> None:
    """Write ``trace`` as CSV to a path or file-like object."""
    own = isinstance(target, (str, Path))
    fh: TextIO = open(target, "w") if own else target  # type: ignore[arg-type]
    try:
        fh.write(f"{HEADER} name={trace.name}\n")
        fh.write("node,landmark,start,end\n")
        for r in trace:
            fh.write(f"{r.node},{r.landmark},{r.start!r},{r.end!r}\n")
    finally:
        if own:
            fh.close()


def dumps_trace(trace: Trace) -> str:
    """Serialise ``trace`` to a CSV string."""
    buf = _io.StringIO()
    dump_trace(trace, buf)
    return buf.getvalue()


def load_trace(source: Union[str, Path, TextIO]) -> Trace:
    """Read a trace written by :func:`dump_trace`.

    Accepts a path, a file-like object, or (for convenience) a string that
    *looks like* serialised content (starts with the format header).
    """
    if isinstance(source, str) and source.startswith(HEADER):
        return loads_trace(source)
    own = isinstance(source, (str, Path))
    fh: TextIO = open(source, "r") if own else source  # type: ignore[arg-type]
    try:
        return loads_trace(fh.read())
    finally:
        if own:
            fh.close()


def loads_trace(text: str) -> Trace:
    """Parse serialised trace content."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith(HEADER):
        raise ValueError(f"not a repro trace file (missing '{HEADER}' header)")
    name = "trace"
    if "name=" in lines[0]:
        name = lines[0].split("name=", 1)[1].strip()
    records: List[VisitRecord] = []
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#") or line.startswith("node,"):
            continue
        parts = line.split(",")
        if len(parts) != 4:
            raise ValueError(f"line {lineno}: expected 4 fields, got {len(parts)}")
        node, landmark, start, end = parts
        records.append(
            VisitRecord(
                start=float(start), end=float(end), node=int(node), landmark=int(landmark)
            )
        )
    return Trace(records, name=name)
