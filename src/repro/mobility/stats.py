"""Trace analytics reproducing the paper's Section III-B measurements.

Covers Table I (trace characteristics), Fig. 2 (landmark visiting
distributions, observation O1), Fig. 3 (ordered transit-link bandwidths and
matching-link symmetry, O2/O3) and Fig. 4 (per-time-unit bandwidth of the top
links, O4).

All heavy counting is vectorised with NumPy: visits and transits are turned
into index arrays once and aggregated with ``np.add.at`` / ``bincount``
rather than Python-level loops (see the HPC guide notes in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.mobility.trace import SECONDS_PER_DAY, Trace
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class TraceSummary:
    """Table I row: basic characteristics of a mobility trace."""

    name: str
    n_nodes: int
    n_landmarks: int
    duration_days: float
    n_records: int
    n_transits: int

    def as_row(self) -> Tuple:
        return (
            self.name,
            self.n_nodes,
            self.n_landmarks,
            round(self.duration_days, 1),
            self.n_records,
            self.n_transits,
        )


def trace_summary(trace: Trace) -> TraceSummary:
    """Summarise a trace (Table I)."""
    return TraceSummary(
        name=trace.name,
        n_nodes=trace.n_nodes,
        n_landmarks=trace.n_landmarks,
        duration_days=trace.duration / SECONDS_PER_DAY,
        n_records=len(trace),
        n_transits=len(trace.transits()),
    )


def _index_maps(trace: Trace) -> Tuple[Dict[int, int], Dict[int, int]]:
    node_idx = {n: i for i, n in enumerate(trace.nodes)}
    lm_idx = {l: i for i, l in enumerate(trace.landmarks)}
    return node_idx, lm_idx


def visit_count_matrix(trace: Trace) -> np.ndarray:
    """Return an ``[n_nodes, n_landmarks]`` matrix of visit counts."""
    node_idx, lm_idx = _index_maps(trace)
    mat = np.zeros((trace.n_nodes, trace.n_landmarks), dtype=np.int64)
    if len(trace) == 0:
        return mat
    rows = np.fromiter((node_idx[r.node] for r in trace), dtype=np.int64, count=len(trace))
    cols = np.fromiter(
        (lm_idx[r.landmark] for r in trace), dtype=np.int64, count=len(trace)
    )
    np.add.at(mat, (rows, cols), 1)
    return mat


def visit_distribution(
    trace: Trace, top: int = 5
) -> List[Tuple[int, np.ndarray]]:
    """Fig. 2: per-node visit counts for the ``top`` most-visited landmarks.

    Returns a list of ``(landmark_id, counts)`` where ``counts`` is the
    per-node visit count vector sorted in decreasing order — the shape
    plotted in Fig. 2.  O1 holds when each vector has a short steep head and
    a long near-zero tail.
    """
    require_positive("top", top)
    mat = visit_count_matrix(trace)
    totals = mat.sum(axis=0)
    order = np.argsort(-totals)[:top]
    out = []
    for col in order:
        counts = np.sort(mat[:, col])[::-1]
        out.append((trace.landmarks[int(col)], counts))
    return out


def skewness_ratio(counts: np.ndarray, frequent_quantile: float = 0.9) -> float:
    """Fraction of total visits contributed by the top (1-q) of nodes.

    A direct quantification of O1: with q=0.9, the top 10 % of visitors of a
    landmark should contribute the bulk of its visits.
    """
    total = counts.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round((1.0 - frequent_quantile) * counts.size)))
    head = np.sort(counts)[::-1][:k].sum()
    return float(head) / float(total)


def transit_count_matrix(trace: Trace) -> np.ndarray:
    """Return an ``[L, L]`` matrix of transit counts between landmarks."""
    _, lm_idx = _index_maps(trace)
    mat = np.zeros((trace.n_landmarks, trace.n_landmarks), dtype=np.int64)
    transits = trace.transits()
    if not transits:
        return mat
    src = np.fromiter((lm_idx[t.src] for t in transits), dtype=np.int64, count=len(transits))
    dst = np.fromiter((lm_idx[t.dst] for t in transits), dtype=np.int64, count=len(transits))
    np.add.at(mat, (src, dst), 1)
    return mat


def transit_bandwidth_matrix(trace: Trace, time_unit: float) -> np.ndarray:
    """Average transits per ``time_unit`` seconds on every directed link."""
    require_positive("time_unit", time_unit)
    n_units = max(1.0, trace.duration / time_unit)
    return transit_count_matrix(trace) / n_units


@dataclass(frozen=True)
class LinkBandwidth:
    """A directed transit link with its average bandwidth and the matching
    (reverse-direction) link's bandwidth — the pairing plotted in Fig. 3."""

    src: int
    dst: int
    bandwidth: float
    matching_bandwidth: float

    @property
    def asymmetry(self) -> float:
        """|b_ij - b_ji| / max(b_ij, b_ji); 0 means perfectly symmetric."""
        hi = max(self.bandwidth, self.matching_bandwidth)
        if hi == 0:
            return 0.0
        return abs(self.bandwidth - self.matching_bandwidth) / hi


def ordered_link_bandwidths(trace: Trace, time_unit: float) -> List[LinkBandwidth]:
    """Fig. 3: links with nonzero bandwidth, sorted by decreasing bandwidth.

    Each entry carries its matching link's bandwidth so O3 (symmetry) can be
    checked directly.  Only one of each matching pair is listed (the one with
    the larger bandwidth), as the paper plots matching links with the same
    sequence number.
    """
    bw = transit_bandwidth_matrix(trace, time_unit)
    lms = trace.landmarks
    seen = set()
    links: List[LinkBandwidth] = []
    n = len(lms)
    for i in range(n):
        for j in range(n):
            if i == j or (j, i) in seen or (i, j) in seen:
                continue
            b_ij, b_ji = float(bw[i, j]), float(bw[j, i])
            if b_ij == 0 and b_ji == 0:
                continue
            seen.add((i, j))
            if b_ij >= b_ji:
                links.append(LinkBandwidth(lms[i], lms[j], b_ij, b_ji))
            else:
                links.append(LinkBandwidth(lms[j], lms[i], b_ji, b_ij))
    links.sort(key=lambda l: -l.bandwidth)
    return links


def bandwidth_concentration(trace: Trace, time_unit: float, top_fraction: float = 0.2) -> float:
    """O2 quantified: share of total bandwidth on the top ``top_fraction`` links."""
    links = ordered_link_bandwidths(trace, time_unit)
    if not links:
        return 0.0
    total = sum(l.bandwidth + l.matching_bandwidth for l in links)
    k = max(1, int(round(top_fraction * len(links))))
    head = sum(l.bandwidth + l.matching_bandwidth for l in links[:k])
    return head / total if total else 0.0


def bandwidth_over_time(
    trace: Trace,
    time_unit: float,
    links: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Fig. 4: per-time-unit transit counts for the given directed links.

    Returns ``(unit_starts_days, series)`` where ``series[k, u]`` is the
    number of transits on ``links[k]`` during time unit ``u``.
    """
    require_positive("time_unit", time_unit)
    transits = trace.transits()
    t0 = trace.start_time
    n_units = max(1, int(np.ceil(trace.duration / time_unit)))
    series = np.zeros((len(links), n_units), dtype=np.int64)
    link_index = {pair: k for k, pair in enumerate(links)}
    for tr in transits:
        k = link_index.get((tr.src, tr.dst))
        if k is None:
            continue
        u = int((tr.arrive - t0) // time_unit)
        if 0 <= u < n_units:
            series[k, u] += 1
    unit_starts = (t0 + np.arange(n_units) * time_unit - t0) / SECONDS_PER_DAY
    return unit_starts, series


def top_links(trace: Trace, time_unit: float, k: int = 3) -> List[Tuple[int, int]]:
    """The ``k`` highest-bandwidth directed links (for Fig. 4's selection)."""
    ordered = ordered_link_bandwidths(trace, time_unit)
    return [(l.src, l.dst) for l in ordered[:k]]


def bandwidth_stability(series: np.ndarray) -> np.ndarray:
    """O4 quantified: per-link coefficient of variation of the Fig. 4 series.

    Lower is more stable; the paper argues a single time unit's measurement
    reflects the long-run bandwidth, i.e. the CV is small outside holidays.
    """
    means = series.mean(axis=1)
    stds = series.std(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        cv = np.where(means > 0, stds / means, 0.0)
    return cv
