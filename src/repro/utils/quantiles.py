"""Five-number summaries (min / Q1 / mean / Q3 / max).

The paper reports several metrics this way: Fig. 6(b) shows the minimal,
first-quantile, average, third-quantile and maximal prediction accuracy over
all nodes, and Fig. 16(a) shows the same spread for delivery delays in the
campus deployment.  ``five_number_summary`` produces exactly that tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class FiveNumberSummary:
    """Min, first quartile, mean, third quartile and max of a sample.

    Note the middle entry is the *mean*, not the median, matching how the
    paper annotates its box-style figures ("minimal, first quantile, average,
    third quantile, and maximal").
    """

    minimum: float
    q1: float
    mean: float
    q3: float
    maximum: float

    def as_tuple(self) -> tuple:
        return (self.minimum, self.q1, self.mean, self.q3, self.maximum)

    def __str__(self) -> str:
        return (
            f"min={self.minimum:.4g} q1={self.q1:.4g} mean={self.mean:.4g} "
            f"q3={self.q3:.4g} max={self.maximum:.4g}"
        )


def five_number_summary(values: Iterable[float]) -> FiveNumberSummary:
    """Compute a :class:`FiveNumberSummary` over ``values``.

    Raises
    ------
    ValueError
        If ``values`` is empty or contains NaN.  (NaN would otherwise
        propagate silently through every statistic via numpy warnings.)
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    if np.isnan(arr).any():
        n_bad = int(np.isnan(arr).sum())
        raise ValueError(
            f"cannot summarise a sample containing NaN "
            f"({n_bad} of {arr.size} values)"
        )
    if arr.size == 1:
        # degenerate sample (e.g. a short traced run delivering one packet):
        # every statistic collapses to the single value, and skipping the
        # percentile machinery avoids its edge cases on tiny inputs
        v = float(arr[0])
        return FiveNumberSummary(minimum=v, q1=v, mean=v, q3=v, maximum=v)
    return FiveNumberSummary(
        minimum=float(arr.min()),
        q1=float(np.percentile(arr, 25)),
        mean=float(arr.mean()),
        q3=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
    )
