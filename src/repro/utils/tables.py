"""Plain-text table rendering for the benchmark harness.

Every benchmark that regenerates a paper table/figure prints its rows through
:func:`format_table` so the output reads like the paper's own tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each cell is stringified with light
        float formatting (3 significant digits for very small/large values).
    title:
        Optional heading printed above the table.
    """
    str_rows = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values, *, lo: float = None, hi: float = None) -> str:
    """Render a numeric series as a one-line ASCII sparkline.

    Values map onto a 10-level character ramp; ``lo``/``hi`` pin the scale
    (default: the series' own min/max), letting multiple series share one
    scale for comparison.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else float(lo)
    hi = max(vals) if hi is None else float(hi)
    span = hi - lo
    out = []
    for v in vals:
        if span <= 0:
            idx = len(_SPARK_CHARS) // 2
        else:
            frac = min(1.0, max(0.0, (v - lo) / span))
            idx = int(round(frac * (len(_SPARK_CHARS) - 1)))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def series_figure(
    series,
    *,
    title: str = "",
    value_format: str = "{:.3g}",
) -> str:
    """Render named series as labelled sparklines on a shared scale.

    ``series`` maps label -> sequence of numbers.  The output reads like a
    miniature multi-line figure::

        DTN-FLOW  [@%#**]  0.848 .. 0.904
        SimBet    [ .:-=]  0.184 .. 0.721
    """
    if not series:
        return title
    all_vals = [float(v) for vs in series.values() for v in vs]
    lo, hi = min(all_vals), max(all_vals)
    width = max(len(str(k)) for k in series)
    lines = [title] if title else []
    for label, vs in series.items():
        spark = sparkline(vs, lo=lo, hi=hi)
        first = value_format.format(vs[0])
        last = value_format.format(vs[-1])
        lines.append(f"{str(label).ljust(width)}  [{spark}]  {first} .. {last}")
    return "\n".join(lines)
