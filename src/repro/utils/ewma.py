"""Exponentially weighted moving average, as used for transit-link bandwidth.

The paper (Section IV-C.1, Eq. 4) updates the bandwidth of a transit link at
every time-unit boundary as a convex combination of the previous estimate and
the number of transits observed during the elapsed time unit::

    b_new = rho * n_t + (1 - rho) * b_old

where ``rho`` is a weight factor in (0, 1].  ``Ewma`` captures exactly this
update and is reused anywhere the codebase needs a smoothed rate (link
bandwidth tables, load-balancing in/out rates).
"""

from __future__ import annotations

from repro.utils.validation import require_in_range


class Ewma:
    """A scalar exponentially weighted moving average.

    Parameters
    ----------
    rho:
        Weight given to the *new* observation.  ``rho == 1`` degenerates to
        "latest sample wins"; small ``rho`` gives a long memory.
    initial:
        Value reported before any observation arrives.

    Examples
    --------
    >>> e = Ewma(rho=0.5)
    >>> e.update(4.0)
    2.0
    >>> e.update(4.0)
    3.0
    >>> e.value
    3.0
    """

    __slots__ = ("rho", "_value", "_n")

    def __init__(self, rho: float = 0.5, initial: float = 0.0) -> None:
        require_in_range("rho", rho, 0.0, 1.0, inclusive_low=False)
        self.rho = float(rho)
        self._value = float(initial)
        self._n = 0

    @property
    def value(self) -> float:
        """Current smoothed value."""
        return self._value

    @property
    def n_updates(self) -> int:
        """Number of observations folded in so far."""
        return self._n

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the average and return the new value."""
        self._value = self.rho * float(sample) + (1.0 - self.rho) * self._value
        self._n += 1
        return self._value

    def reset(self, value: float = 0.0) -> None:
        """Forget all history and restart from ``value``."""
        self._value = float(value)
        self._n = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ewma(rho={self.rho}, value={self._value:.6g}, n={self._n})"
