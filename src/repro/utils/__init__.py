"""Shared utilities: EWMA smoothing, quantile summaries, validation, tables."""

from repro.utils.ewma import Ewma
from repro.utils.quantiles import five_number_summary, FiveNumberSummary
from repro.utils.validation import (
    require_positive,
    require_non_negative,
    require_in_range,
    require_probability,
)
from repro.utils.tables import format_table, series_figure, sparkline

__all__ = [
    "Ewma",
    "five_number_summary",
    "FiveNumberSummary",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_probability",
    "format_table",
    "series_figure",
    "sparkline",
]
