"""Small argument-validation helpers used across the library.

These raise early, with messages naming the offending parameter, so that a
misconfigured experiment fails at construction time rather than deep inside a
simulation run.
"""

from __future__ import annotations

from typing import Optional


def require_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Return ``value`` if within ``[low, high]`` (bounds optionally open)."""
    ok_low = value >= low if inclusive_low else value > low
    ok_high = value <= high if inclusive_high else value < high
    if not (ok_low and ok_high):
        lo = "[" if inclusive_low else "("
        hi = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must be in {lo}{low}, {high}{hi}, got {value!r}")
    return value


def require_probability(name: str, value: float) -> float:
    """Return ``value`` if it is a valid probability in ``[0, 1]``."""
    return require_in_range(name, value, 0.0, 1.0)


def require_sorted(name: str, values, *, strict: bool = False) -> None:
    """Raise ``ValueError`` unless ``values`` is (strictly) non-decreasing."""
    prev: Optional[float] = None
    for i, v in enumerate(values):
        if prev is not None:
            bad = v <= prev if strict else v < prev
            if bad:
                kind = "strictly increasing" if strict else "non-decreasing"
                raise ValueError(
                    f"{name} must be {kind}; element {i} = {v!r} after {prev!r}"
                )
        prev = v
