"""Run provenance: make every result row self-describing.

A :class:`RunProvenance` pins down *what produced a number*: the protocol,
the trace, the workload seed, the full simulation config, and the package
and Python versions.  Benchmark JSON that carries it can be re-run months
later without archaeology through shell history.
"""

from __future__ import annotations

import dataclasses
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


def package_version() -> str:
    """The repro package version (lazy import to avoid a cycle)."""
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - broken install only
        return "unknown"


def _jsonable(value: Any) -> Any:
    """Recursively coerce config values into JSON-serialisable shapes."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    return repr(value)


@dataclass(frozen=True)
class RunProvenance:
    """Everything needed to reproduce (or audit) one simulation run."""

    protocol: str
    trace: str
    seed: int
    config: Dict[str, Any] = field(default_factory=dict)
    #: the resolved scenario this run materialized from (repro.eval.scenario);
    #: ``repro rerun`` rebuilds a bit-identical run from this dict alone
    scenario: Optional[Dict[str, Any]] = None
    package_version: str = field(default_factory=package_version)
    python_version: str = field(default_factory=platform.python_version)

    @classmethod
    def from_run(
        cls,
        protocol: str,
        trace: str,
        config: Any,
        *,
        scenario: Optional[Dict[str, Any]] = None,
    ) -> "RunProvenance":
        """Build provenance from a protocol name, trace name and SimConfig."""
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            cfg = _jsonable(dataclasses.asdict(config))
            seed = getattr(config, "seed", 0)
        elif isinstance(config, dict):
            cfg = _jsonable(config)
            seed = int(cfg.get("seed", 0) or 0)
        else:
            cfg = {"repr": repr(config)}
            seed = 0
        return cls(
            protocol=protocol,
            trace=trace,
            seed=int(seed),
            config=cfg,
            scenario=_jsonable(scenario) if scenario is not None else None,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "trace": self.trace,
            "seed": self.seed,
            "config": dict(self.config),
            "scenario": dict(self.scenario) if self.scenario is not None else None,
            "package_version": self.package_version,
            "python_version": self.python_version,
        }
