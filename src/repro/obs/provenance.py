"""Run provenance: make every result row self-describing.

A :class:`RunProvenance` pins down *what produced a number*: the protocol,
the trace, the workload seed, the full simulation config, and the package
and Python versions.  Benchmark JSON that carries it can be re-run months
later without archaeology through shell history.
"""

from __future__ import annotations

import dataclasses
import json
import platform
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Any, Dict, Optional


def package_version() -> str:
    """The repro package version (lazy import to avoid a cycle)."""
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - broken install only
        return "unknown"


def _set_sort_key(value: Any) -> str:
    """A total order over already-jsonable values (for set determinism)."""
    return json.dumps(value, sort_keys=True)


def _jsonable(value: Any) -> Any:
    """Recursively coerce config values into JSON-serialisable shapes.

    The output is *deterministic*: sets/frozensets are emitted sorted (by
    their canonical JSON encoding, so mixed-type sets still order stably),
    tuples become lists, :class:`~pathlib.PurePath` becomes its string, and
    numpy scalars collapse to plain Python numbers.  Determinism matters
    because the experiment store content-hashes these dicts — the same
    resolved scenario must always hash identically.
    """
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(v) for v in value), key=_set_sort_key)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    # numpy scalars (np.int64, np.float32, np.bool_, ...) expose .item();
    # duck-type rather than import numpy here.  Checked before the plain
    # scalars because np.float64 subclasses float but must collapse to the
    # builtin type for hash/type determinism.
    if type(value).__module__ == "numpy" and hasattr(value, "item"):
        return _jsonable(value.item())
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, PurePath):
        return str(value)
    return repr(value)


@dataclass(frozen=True)
class RunProvenance:
    """Everything needed to reproduce (or audit) one simulation run."""

    protocol: str
    trace: str
    seed: int
    config: Dict[str, Any] = field(default_factory=dict)
    #: the resolved scenario this run materialized from (repro.eval.scenario);
    #: ``repro rerun`` rebuilds a bit-identical run from this dict alone
    scenario: Optional[Dict[str, Any]] = None
    #: how the run was executed (shard topology, fallback reasons); purely
    #: descriptive — identical metrics regardless of its value — and thus
    #: *excluded* from the scenario identity the experiment store hashes
    execution: Optional[Dict[str, Any]] = None
    package_version: str = field(default_factory=package_version)
    python_version: str = field(default_factory=platform.python_version)

    @classmethod
    def from_run(
        cls,
        protocol: str,
        trace: str,
        config: Any,
        *,
        scenario: Optional[Dict[str, Any]] = None,
    ) -> "RunProvenance":
        """Build provenance from a protocol name, trace name and SimConfig."""
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            cfg = _jsonable(dataclasses.asdict(config))
            seed = getattr(config, "seed", 0)
        elif isinstance(config, dict):
            cfg = _jsonable(config)
            seed = int(cfg.get("seed", 0) or 0)
        else:
            cfg = {"repr": repr(config)}
            seed = 0
        return cls(
            protocol=protocol,
            trace=trace,
            seed=int(seed),
            config=cfg,
            scenario=_jsonable(scenario) if scenario is not None else None,
        )

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "protocol": self.protocol,
            "trace": self.trace,
            "seed": self.seed,
            "config": dict(self.config),
            "scenario": dict(self.scenario) if self.scenario is not None else None,
            "package_version": self.package_version,
            "python_version": self.python_version,
        }
        # only stamped for sharded/fallback runs; absent keeps older
        # provenance JSON byte-identical
        if self.execution is not None:
            out["execution"] = dict(self.execution)
        return out
