"""Structured event tracing for simulation runs.

The simulator is normally a black box between a workload and four summary
metrics.  The :class:`EventLog` opens it up: every packet-lifecycle step
(generation, each forwarding hop, delivery or death) and every routing
control action (table exchange, bandwidth EWMA update, predictor outcome)
can be recorded as a typed :class:`Event` stamped with simulation time and
the entity ids involved.

Design constraints:

* **near-zero overhead when disabled** — the engine and protocols guard
  every emission behind a cached boolean (``World.obs_enabled``), so a
  default run never builds an event object, never calls :meth:`EventLog.emit`
  and never allocates;
* **bounded memory** — the log is a ring buffer (``capacity`` events); long
  runs keep the most recent window and count what was evicted;
* **machine-readable** — events export as JSONL for offline analysis.

Event taxonomy (see docs/observability.md for the full semantics):

================== ==========================================================
packet lifecycle
================== ==========================================================
``generated``       packet born at its source landmark station
``uplinked``        carrier handed the packet up to a landmark station
``forwarded``       station handed the packet down to a mobile carrier
``handover``        node-to-node transfer (baselines / node-rescue extension)
``delivered``       packet reached its destination landmark within TTL
``dropped_ttl``     packet expired and was removed from a buffer
``dropped_buffer``  a transfer was refused because the carrier's memory was
                    full (the packet stays with its current holder)
``loop_detected``   the packet's landmark path closed a routing cycle
``deadend_reroute`` a dead-ended carrier dumped the packet for re-routing
================== ==========================================================

================== ==========================================================
routing control
================== ==========================================================
``table_exchange``  a routing-table snapshot or backward report was applied
``bw_update``       a bandwidth EWMA fold or backward-report application
``predictor_hit``   a node's next-transit prediction was correct
``predictor_miss``  a node's next-transit prediction was wrong
================== ==========================================================

================== ==========================================================
fault injection (see docs/resilience.md)
================== ==========================================================
``fault.injected``  a scheduled fault window activated (landmark outage or
                    death, node churn, link degradation, transfer loss)
``fault.cleared``   a scheduled fault window ended
================== ==========================================================

=========================== ==================================================
executor recovery (see docs/reliability.md)
=========================== ==================================================
``executor.checkpoint``      a crash-safe checkpoint was committed to disk
``executor.resume``          a run restarted from a checkpoint
``executor.worker_dead``     a shard worker died or missed a barrier deadline
``executor.worker_restart``  a dead shard worker was restarted from checkpoint
``executor.fallback``        shard recovery was exhausted; serial fallback
``executor.interrupt``       SIGINT/SIGTERM flushed a final checkpoint
``executor.chaos``           the chaos harness injected an executor fault
=========================== ==================================================

The ``fault.*`` events describe failures *inside the simulated DTN*
(``repro resilience``); the ``executor.*`` events describe failures of
the process/IPC/store layer that runs the simulation (``repro chaos``).
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional

# -- packet lifecycle ---------------------------------------------------------
GENERATED = "generated"
UPLINKED = "uplinked"
FORWARDED = "forwarded"
HANDOVER = "handover"
DELIVERED = "delivered"
DROPPED_TTL = "dropped_ttl"
DROPPED_BUFFER = "dropped_buffer"
LOOP_DETECTED = "loop_detected"
DEADEND_REROUTE = "deadend_reroute"

# -- routing control ----------------------------------------------------------
TABLE_EXCHANGE = "table_exchange"
BW_UPDATE = "bw_update"
PREDICTOR_HIT = "predictor_hit"
PREDICTOR_MISS = "predictor_miss"

# -- fault injection ----------------------------------------------------------
FAULT_INJECTED = "fault.injected"
FAULT_CLEARED = "fault.cleared"

# -- executor recovery --------------------------------------------------------
EXECUTOR_CHECKPOINT = "executor.checkpoint"
EXECUTOR_RESUME = "executor.resume"
EXECUTOR_WORKER_DEAD = "executor.worker_dead"
EXECUTOR_WORKER_RESTART = "executor.worker_restart"
EXECUTOR_FALLBACK = "executor.fallback"
EXECUTOR_INTERRUPT = "executor.interrupt"
EXECUTOR_CHAOS = "executor.chaos"

PACKET_EVENTS = frozenset(
    {
        GENERATED,
        UPLINKED,
        FORWARDED,
        HANDOVER,
        DELIVERED,
        DROPPED_TTL,
        DROPPED_BUFFER,
        LOOP_DETECTED,
        DEADEND_REROUTE,
    }
)
CONTROL_EVENTS = frozenset({TABLE_EXCHANGE, BW_UPDATE, PREDICTOR_HIT, PREDICTOR_MISS})
FAULT_EVENTS = frozenset({FAULT_INJECTED, FAULT_CLEARED})
EXECUTOR_EVENTS = frozenset(
    {
        EXECUTOR_CHECKPOINT,
        EXECUTOR_RESUME,
        EXECUTOR_WORKER_DEAD,
        EXECUTOR_WORKER_RESTART,
        EXECUTOR_FALLBACK,
        EXECUTOR_INTERRUPT,
        EXECUTOR_CHAOS,
    }
)
ALL_EVENTS = PACKET_EVENTS | CONTROL_EVENTS | FAULT_EVENTS | EXECUTOR_EVENTS

#: terminal packet-lifecycle states (at most one per packet id)
TERMINAL_EVENTS = frozenset({DELIVERED, DROPPED_TTL})


@dataclass
class Event:
    """One recorded simulation event.

    ``t`` is simulation time (seconds); ``packet``/``node``/``landmark``
    are the entity ids involved (None when not applicable); ``data`` holds
    event-specific extras (e.g. the delivery delay, the table-entry count).
    """

    __slots__ = ("t", "etype", "packet", "node", "landmark", "data")

    t: float
    etype: str
    packet: Optional[int]
    node: Optional[int]
    landmark: Optional[int]
    data: Optional[Dict[str, object]]

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"t": self.t, "event": self.etype}
        if self.packet is not None:
            out["packet"] = self.packet
        if self.node is not None:
            out["node"] = self.node
        if self.landmark is not None:
            out["landmark"] = self.landmark
        if self.data:
            out.update(self.data)
        return out


class EventLog:
    """A bounded, append-only log of simulation events.

    Parameters
    ----------
    capacity:
        Ring-buffer size; once full, the oldest events are evicted (the
        eviction count is tracked in :attr:`n_evicted`).
    enabled:
        When False every :meth:`emit` is a no-op.  Callers on hot paths
        should additionally guard on :attr:`enabled` (or a cached copy)
        so argument construction itself is skipped.

    A *tap* (:attr:`tap`) is a callback invoked synchronously with every
    recorded :class:`Event`, before ring-buffer eviction can lose it — the
    live-streaming hook behind ``repro serve``'s SSE replay endpoint.  The
    tap runs on the emitting (engine) thread; a slow tap slows the
    simulation down, which is exactly what wall-clock replay wants.
    """

    def __init__(self, capacity: int = 200_000, *, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        self._buf: deque = deque(maxlen=self.capacity)
        self.n_emitted = 0
        self.tap: Optional[Callable[[Event], None]] = None

    # -- recording ---------------------------------------------------------------
    def emit(
        self,
        t: float,
        etype: str,
        *,
        packet: Optional[int] = None,
        node: Optional[int] = None,
        landmark: Optional[int] = None,
        **data: object,
    ) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        self.n_emitted += 1
        event = Event(t, etype, packet, node, landmark, data or None)
        self._buf.append(event)
        if self.tap is not None:
            self.tap(event)

    # -- queries ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buf)

    @property
    def n_evicted(self) -> int:
        """Events lost to ring-buffer eviction."""
        return self.n_emitted - len(self._buf)

    def select(
        self,
        *,
        etypes: Optional[Iterable[str]] = None,
        packet: Optional[int] = None,
        node: Optional[int] = None,
        landmark: Optional[int] = None,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
    ) -> List[Event]:
        """Filter events; all criteria are conjunctive, None means 'any'."""
        wanted = frozenset(etypes) if etypes is not None else None
        out = []
        for e in self._buf:
            if wanted is not None and e.etype not in wanted:
                continue
            if packet is not None and e.packet != packet:
                continue
            if node is not None and e.node != node:
                continue
            if landmark is not None and e.landmark != landmark:
                continue
            if t_min is not None and e.t < t_min:
                continue
            if t_max is not None and e.t > t_max:
                continue
            out.append(e)
        return out

    def packet_journey(self, pid: int) -> List[Event]:
        """Every event of packet ``pid`` in emission (= causal) order.

        The engine's clock is monotone, so emission order is time order;
        same-timestamp events keep the order the engine processed them in.
        """
        return [e for e in self._buf if e.packet == pid]

    def counts_by_type(self) -> Dict[str, int]:
        """Retained event counts per type (evicted events not included)."""
        return dict(_Counter(e.etype for e in self._buf))

    def delivered_packets(self) -> List[int]:
        """Packet ids with a ``delivered`` event in the retained window."""
        return [e.packet for e in self._buf if e.etype == DELIVERED and e.packet is not None]

    # -- export --------------------------------------------------------------------
    def to_jsonl(self, path: str) -> int:
        """Write the retained events as JSON lines; returns lines written."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for e in self._buf:
                fh.write(json.dumps(e.as_dict(), sort_keys=True))
                fh.write("\n")
                n += 1
        return n

    def jsonl_lines(self) -> Iterator[str]:
        """The retained events as JSON strings (one per event)."""
        for e in self._buf:
            yield json.dumps(e.as_dict(), sort_keys=True)


#: shared always-disabled log for default (untraced) runs
NULL_LOG = EventLog(capacity=1, enabled=False)
