"""Low-overhead sampling profiler: stack samples + allocation snapshots.

Spans tell you where *instrumented* time goes; the sampler tells you
where time goes inside a phase, with no instrumentation at all.  A
daemon thread wakes ``hz`` times per second (``perf_counter``-paced via
``Event.wait``) and snapshots the target thread's Python stack through
``sys._current_frames()``.  Each snapshot is collapsed to a tuple of
``module:qualname`` labels and counted, so an hour-long run still holds
one small dict — stacks seen often are hot, by the law of large numbers.

Optionally the sampler brackets the run with :mod:`tracemalloc`
snapshots and reports the top allocation-growth sites, which is how the
ROADMAP's memory items get their numbers.

The profiled code is untouched: overhead is the GIL time the sampler
thread steals, roughly ``hz × stack-depth × ~1 µs`` per second — well
under 1% at the default rate.  The default rate is a prime (97 Hz)
so sampling does not phase-lock with periodic simulation work.
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter
from types import FrameType
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler", "frame_label"]

#: bound on recorded stack depth — deeper frames are truncated at the root
_MAX_DEPTH = 80

_DEFAULT_HZ = 97.0


def _module_label(filename: str) -> str:
    """A readable module label for a code object's filename.

    ``.../src/repro/sim/engine.py`` becomes ``repro.sim.engine``; files
    outside the package keep their basename without extension.
    """
    norm = filename.replace("\\", "/")
    marker = "/repro/"
    idx = norm.rfind(marker)
    if idx >= 0:
        tail = norm[idx + 1 :]
        if tail.endswith(".py"):
            tail = tail[:-3]
        if tail.endswith("/__init__"):
            tail = tail[: -len("/__init__")]
        return tail.replace("/", ".")
    base = norm.rsplit("/", 1)[-1]
    return base[:-3] if base.endswith(".py") else base


def frame_label(frame: FrameType) -> str:
    """``module.path:qualified_function`` label for one stack frame."""
    code = frame.f_code
    name = getattr(code, "co_qualname", None) or code.co_name
    return f"{_module_label(code.co_filename)}:{name}"


class SamplingProfiler:
    """Samples one thread's Python stack from a background daemon thread.

    Usage::

        sampler = SamplingProfiler(hz=97)
        sampler.start()          # samples the calling thread
        ...                      # run the workload
        sampler.stop()
        sampler.samples          # {(root_label, ..., leaf_label): count}
    """

    def __init__(
        self,
        hz: float = _DEFAULT_HZ,
        *,
        trace_allocations: bool = False,
        top_allocations: int = 15,
    ) -> None:
        if not hz > 0:
            raise ValueError(f"hz must be positive, got {hz}")
        #: effective rate is capped: beyond ~1 kHz the sampler thread
        #: contends for the GIL instead of observing it
        self.hz = min(float(hz), 1000.0)
        self.trace_allocations = bool(trace_allocations)
        self.top_allocations = int(top_allocations)
        self.samples: Dict[Tuple[str, ...], int] = {}
        self.n_samples = 0
        self.duration = 0.0
        #: top allocation-growth sites (populated on stop when tracing)
        self.allocations: List[Dict[str, Any]] = []
        self._target_ident: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0
        self._alloc_snapshot: Any = None
        self._started_tracemalloc = False

    # -- lifecycle -------------------------------------------------------------
    def start(self, target_ident: Optional[int] = None) -> None:
        """Begin sampling ``target_ident`` (default: the calling thread)."""
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._target_ident = (
            target_ident
            if target_ident is not None
            else threading.get_ident()
        )
        if self.trace_allocations:
            self._start_tracemalloc()
        self._stop.clear()
        self._t0 = perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and (if tracing) collect allocation growth."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.duration += perf_counter() - self._t0
        if self.trace_allocations:
            self._collect_allocations()

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- sampling loop ---------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        wait = self._stop.wait
        samples = self.samples
        target = self._target_ident
        while not wait(interval):
            frame = sys._current_frames().get(target)
            if frame is None:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < _MAX_DEPTH:
                stack.append(frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            key = tuple(stack)
            samples[key] = samples.get(key, 0) + 1
            self.n_samples += 1

    # -- allocations -----------------------------------------------------------
    def _start_tracemalloc(self) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._alloc_snapshot = tracemalloc.take_snapshot()

    def _collect_allocations(self) -> None:
        import tracemalloc

        if self._alloc_snapshot is None:
            return
        snapshot = tracemalloc.take_snapshot()
        stats = snapshot.compare_to(self._alloc_snapshot, "lineno")
        self.allocations = [
            {
                "site": f"{_module_label(st.traceback[0].filename)}:"
                f"{st.traceback[0].lineno}",
                "size_kb": st.size_diff / 1024.0,
                "count": st.count_diff,
            }
            for st in stats[: self.top_allocations]
        ]
        self._alloc_snapshot = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False

    # -- export ----------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-shaped summary (stacks become ``;``-joined strings)."""
        return {
            "hz": self.hz,
            "n_samples": self.n_samples,
            "duration_seconds": self.duration,
            "stacks": {
                ";".join(stack): count for stack, count in self.samples.items()
            },
            "allocations": list(self.allocations),
        }
