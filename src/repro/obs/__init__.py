"""repro.obs — simulation observability: tracing, metrics, profiling.

Four pieces, bundled per-run by :class:`Observability`:

* :mod:`repro.obs.events` — typed packet-lifecycle and routing-control
  event tracing with a ring buffer and JSONL export;
* :mod:`repro.obs.registry` — named counters/gauges/histograms protocols
  register into instead of ad-hoc dicts;
* :mod:`repro.obs.profiler` — ``perf_counter`` phase timers (where does
  the wall-clock go?), a shim over :mod:`repro.obs.spans`;
* :mod:`repro.obs.provenance` — config/seed/version stamps making result
  rows self-describing.

Plus the deep-profiling layer:

* :mod:`repro.obs.spans` — hierarchical span trees with self vs.
  cumulative seconds;
* :mod:`repro.obs.sampler` — background stack sampling and allocation
  snapshots;
* :mod:`repro.obs.export` — collapsed-stack flamegraphs and ingestible
  profile payloads.

See docs/observability.md for the event taxonomy and CLI usage
(``repro trace``, ``repro stats``, ``repro profile``).
"""

from repro.obs import events as event_types
from repro.obs.events import (
    ALL_EVENTS,
    CONTROL_EVENTS,
    EXECUTOR_EVENTS,
    FAULT_EVENTS,
    NULL_LOG,
    PACKET_EVENTS,
    TERMINAL_EVENTS,
    Event,
    EventLog,
)
from repro.obs.export import (
    collapsed_lines,
    profile_payload,
    render_span_tree,
    write_flamegraph,
    write_profile,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.provenance import RunProvenance, package_version
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import Observability, ObsConfig
from repro.obs.sampler import SamplingProfiler
from repro.obs.spans import SpanNode, SpanRecorder

__all__ = [
    "ALL_EVENTS",
    "CONTROL_EVENTS",
    "Counter",
    "EXECUTOR_EVENTS",
    "Event",
    "EventLog",
    "FAULT_EVENTS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_LOG",
    "ObsConfig",
    "Observability",
    "PACKET_EVENTS",
    "PhaseProfiler",
    "RunProvenance",
    "SamplingProfiler",
    "SpanNode",
    "SpanRecorder",
    "TERMINAL_EVENTS",
    "collapsed_lines",
    "event_types",
    "package_version",
    "profile_payload",
    "render_span_tree",
    "write_flamegraph",
    "write_profile",
]
