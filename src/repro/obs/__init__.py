"""repro.obs — simulation observability: tracing, metrics, profiling.

Four pieces, bundled per-run by :class:`Observability`:

* :mod:`repro.obs.events` — typed packet-lifecycle and routing-control
  event tracing with a ring buffer and JSONL export;
* :mod:`repro.obs.registry` — named counters/gauges/histograms protocols
  register into instead of ad-hoc dicts;
* :mod:`repro.obs.profiler` — ``perf_counter`` phase timers (where does
  the wall-clock go?);
* :mod:`repro.obs.provenance` — config/seed/version stamps making result
  rows self-describing.

See docs/observability.md for the event taxonomy and CLI usage
(``repro trace``, ``repro stats``).
"""

from repro.obs import events as event_types
from repro.obs.events import (
    ALL_EVENTS,
    CONTROL_EVENTS,
    FAULT_EVENTS,
    NULL_LOG,
    PACKET_EVENTS,
    TERMINAL_EVENTS,
    Event,
    EventLog,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.provenance import RunProvenance, package_version
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import Observability, ObsConfig

__all__ = [
    "ALL_EVENTS",
    "CONTROL_EVENTS",
    "Counter",
    "Event",
    "EventLog",
    "FAULT_EVENTS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_LOG",
    "ObsConfig",
    "Observability",
    "PACKET_EVENTS",
    "PhaseProfiler",
    "RunProvenance",
    "TERMINAL_EVENTS",
    "event_types",
    "package_version",
]
