"""The observability context threaded through a simulation run.

One :class:`Observability` object bundles the three instruments —
:class:`~repro.obs.events.EventLog`,
:class:`~repro.obs.registry.MetricsRegistry` and
:class:`~repro.obs.profiler.PhaseProfiler` — behind a single master switch:

* ``enabled=False`` (the default): no events are recorded and the detailed
  per-entity registry metrics (queue-depth gauges, bandwidth gauges,
  predictor counters, buffer-occupancy histograms) are skipped entirely.
  Core experiment counters (via :class:`~repro.sim.metrics.MetricsCollector`)
  and the cheap phase timers stay on.
* ``enabled=True``: the full event taxonomy is traced into the ring buffer
  and protocols feed the detailed registry metrics.

The engine caches ``obs.enabled`` on the :class:`~repro.sim.engine.World`
(as ``world.obs_enabled``) so hot paths pay one attribute check, not an
object graph walk, when observability is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.events import EventLog
from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import MetricsRegistry


@dataclass
class ObsConfig:
    """Observability knobs for one simulation run."""

    #: master switch: event tracing + detailed registry metrics
    enabled: bool = False
    #: event ring-buffer capacity (oldest events evicted beyond this)
    event_capacity: int = 200_000
    #: phase timers (cheap: two perf_counter calls per phase entry)
    profile: bool = True

    def __post_init__(self) -> None:
        if self.event_capacity <= 0:
            raise ValueError(
                f"event_capacity must be positive, got {self.event_capacity}"
            )


class Observability:
    """Event log + metrics registry + phase profiler for one run."""

    __slots__ = ("config", "events", "registry", "profiler")

    def __init__(
        self,
        config: Optional[ObsConfig] = None,
        *,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.config = config or ObsConfig()
        self.events = EventLog(
            capacity=self.config.event_capacity, enabled=self.config.enabled
        )
        self.registry = MetricsRegistry()
        # An injected profiler (e.g. one anchored on a shared SpanRecorder,
        # as ``repro profile`` does per scenario point) wins over the config
        # flag so callers control where its spans nest.
        self.profiler = (
            profiler
            if profiler is not None
            else PhaseProfiler(enabled=self.config.profile)
        )

    @property
    def enabled(self) -> bool:
        """Whether detailed tracing/metrics are on (the master switch)."""
        return self.config.enabled

    @classmethod
    def tracing(cls, *, event_capacity: int = 200_000, profile: bool = True) -> "Observability":
        """Convenience constructor with tracing fully enabled."""
        return cls(ObsConfig(enabled=True, event_capacity=event_capacity, profile=profile))

    def stats_dict(self) -> Dict[str, object]:
        """Registry metrics + phase timings + event counts, JSON-shaped."""
        return {
            "metrics": self.registry.as_dict(),
            "phase_timings": self.profiler.report(),
            "events": {
                "recorded": len(self.events),
                "emitted": self.events.n_emitted,
                "evicted": self.events.n_evicted,
                "capacity": self.events.capacity,
                "by_type": self.events.counts_by_type(),
            },
        }
