"""A metrics registry: named counters, gauges and histograms.

Protocols and the engine register metrics here instead of keeping ad-hoc
dicts: the registry gives every number a stable name, a kind, and a single
export path (``as_dict`` / ``rows``), so ``repro stats`` and benchmark JSON
can report *all* instrumentation without knowing each protocol's internals.

Naming convention: dotted lowercase families, with entity ids in square
brackets — e.g. ``packets.generated``, ``landmark.queue_depth[3]``,
``bw.out[2->5]``.  Instruments are get-or-create: asking twice for the same
name returns the same object (asking with a different kind raises).

Instruments are deliberately minimal (plain attribute updates, no locks —
the simulator is single-threaded) so that updating one costs no more than
an attribute increment.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that goes up and down (queue depth, EWMA estimate, ...)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming distribution summary: count, sum, min, max, mean.

    Kept O(1) in memory — no buckets or reservoirs — because per-event
    updates run inside the simulation hot path.  When a full distribution
    is needed, trace the underlying events instead.
    """

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.4g})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create store of named instruments."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Instrument] = {}

    def _get(self, name: str, cls) -> Instrument:
        m = self._metrics.get(name)
        if m is None:
            m = cls(name)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}, "
                f"requested {cls.kind}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- queries -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._metrics.values())

    def get(self, name: str) -> Union[Instrument, None]:
        return self._metrics.get(name)

    def as_dict(self) -> Dict[str, object]:
        """Every metric's value, keyed by name (histograms as sub-dicts)."""
        out: Dict[str, object] = {}
        for name, m in sorted(self._metrics.items()):
            out[name] = m.as_dict() if isinstance(m, Histogram) else m.value
        return out

    def rows(self) -> List[Tuple[str, str, str]]:
        """``(name, kind, rendered value)`` rows for table printing."""
        rows = []
        for name, m in sorted(self._metrics.items()):
            if isinstance(m, Histogram):
                if m.count:
                    val = (
                        f"n={m.count} mean={m.mean:.4g} "
                        f"min={m.min:.4g} max={m.max:.4g}"
                    )
                else:
                    val = "n=0"
            elif isinstance(m, Gauge):
                val = f"{m.value:.6g}"
            else:
                val = str(m.value)
            rows.append((name, m.kind, val))
        return rows
