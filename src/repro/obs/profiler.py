"""Phase profiling: where does a simulation's wall-clock time go?

The engine and protocols bracket their coarse phases with
``perf_counter``-based timers.  Phases are hierarchy-free accumulators:
``dispatch.visit_start`` includes the protocol hooks it triggers, so the
router's ``router.carrier_selection`` seconds are a *subset* of it, not a
sibling (documented in docs/observability.md).

Two usage styles:

* hot loops call :meth:`PhaseProfiler.add` with a precomputed delta (two
  ``perf_counter`` calls, no context-manager overhead);
* everything else uses ``with profiler.phase("name"):``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Tuple


class PhaseProfiler:
    """Accumulates (seconds, calls) per named phase."""

    __slots__ = ("enabled", "_seconds", "_calls")

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    def add(self, phase: str, dt: float, calls: int = 1) -> None:
        """Fold ``dt`` seconds (over ``calls`` invocations) into ``phase``."""
        if not self.enabled:
            return
        self._seconds[phase] = self._seconds.get(phase, 0.0) + dt
        self._calls[phase] = self._calls.get(phase, 0) + calls

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        if not self.enabled:
            yield
            return
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - t0)

    # -- queries -----------------------------------------------------------------
    def seconds(self, phase: str) -> float:
        return self._seconds.get(phase, 0.0)

    def calls(self, phase: str) -> int:
        return self._calls.get(phase, 0)

    def report(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds": s, "calls": n}}``, sorted by seconds desc."""
        return {
            name: {"seconds": self._seconds[name], "calls": self._calls.get(name, 0)}
            for name in sorted(self._seconds, key=self._seconds.get, reverse=True)
        }

    def rows(self) -> List[Tuple[str, str, int]]:
        """``(phase, seconds, calls)`` rows for table printing."""
        return [
            (name, f"{self._seconds[name]:.4f}", self._calls.get(name, 0))
            for name in sorted(self._seconds, key=self._seconds.get, reverse=True)
        ]

    def clear(self) -> None:
        self._seconds.clear()
        self._calls.clear()
