"""Phase profiling: where does a simulation's wall-clock time go?

The engine and protocols bracket their coarse phases with
``perf_counter``-based timers.  Since the span refactor the profiler is a
thin shim over a :class:`~repro.obs.spans.SpanRecorder` subtree: phases
recorded while a dispatch span is current nest under it, so
``router.carrier_selection`` is a true *child* of ``dispatch.visit_start``
with its own self-time rather than an overlap-ambiguous sibling
(see docs/observability.md).  The flat :meth:`PhaseProfiler.report` view
aggregates the tree by span name, so its keys and totals are unchanged
for existing ``phase_timings`` consumers.

Two usage styles:

* hot loops call :meth:`PhaseProfiler.add` with a precomputed delta (two
  ``perf_counter`` calls, no context-manager overhead);
* everything else uses ``with profiler.phase("name"):``.

By default each profiler owns a private recorder; pass ``recorder=`` to
share one across runs (``repro profile`` nests every point of a scenario
under one root span this way).  The profiler's *anchor* is the recorder's
current span at construction time: queries and :meth:`clear` only see the
subtree recorded beneath it, so per-run ``phase_timings`` stay per-run
even on a shared recorder.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.spans import SpanNode, SpanRecorder


class PhaseProfiler:
    """Accumulates (seconds, calls) per named phase on a span tree."""

    __slots__ = ("enabled", "recorder", "anchor")

    def __init__(
        self,
        *,
        enabled: bool = True,
        recorder: Optional[SpanRecorder] = None,
    ) -> None:
        self.enabled = bool(enabled)
        self.recorder = recorder if recorder is not None else SpanRecorder()
        #: subtree root for this profiler's phases (supports shared recorders)
        self.anchor: SpanNode = self.recorder.current

    def add(self, phase: str, dt: float, calls: int = 1) -> None:
        """Fold ``dt`` seconds (over ``calls`` invocations) into ``phase``."""
        if not self.enabled:
            return
        # hot path (router hooks call this per visit): fold straight into
        # the recorder's current node, skipping the delegation hop
        cur = self.recorder.current
        node = cur.children.get(phase)
        if node is None:
            node = cur.child(phase)
        node.seconds += dt
        node.calls += calls

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        if not self.enabled:
            yield
            return
        with self.recorder.span(name):
            yield

    # -- queries -----------------------------------------------------------------
    def seconds(self, phase: str) -> float:
        flat = self.recorder.flat(self.anchor).get(phase)
        return flat["seconds"] if flat else 0.0

    def calls(self, phase: str) -> int:
        flat = self.recorder.flat(self.anchor).get(phase)
        return int(flat["calls"]) if flat else 0

    def report(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"seconds": s, "calls": n}}``, sorted by seconds desc."""
        flat = self.recorder.flat(self.anchor)
        return {
            name: {
                "seconds": flat[name]["seconds"],
                "calls": int(flat[name]["calls"]),
            }
            for name in sorted(
                flat, key=lambda n: flat[n]["seconds"], reverse=True
            )
        }

    def rows(self) -> List[Tuple[str, float, int]]:
        """``(phase, seconds, calls)`` rows for table printing.

        Seconds are raw floats; callers format for display.
        """
        return [
            (name, rec["seconds"], int(rec["calls"]))
            for name, rec in self.report().items()
        ]

    def tree(self) -> Dict[str, object]:
        """The span tree under this profiler's anchor (JSON-shaped)."""
        return self.recorder.tree(self.anchor)

    def clear(self) -> None:
        self.recorder.clear(self.anchor)
