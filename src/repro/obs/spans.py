"""Hierarchical timed spans: where the wall-clock goes, with structure.

The flat :class:`~repro.obs.profiler.PhaseProfiler` accumulators answer
"how many seconds did phase X take?" but not "inside what?" — the
``router.*`` phases run *inside* ``dispatch.visit_start``, so their
seconds overlap and no self-time exists.  A :class:`SpanRecorder` keeps
the same cheap accounting (floats folded into nodes, no per-call object
allocation) but arranges it as a tree:

* every span is a node addressed by its *name path* (``root >
  dispatch.visit_start > router.carrier_selection``); re-entering the
  same name under the same parent folds into one node, so a
  million-event run produces a tree with tens of nodes, not millions;
* **cumulative seconds** are the timed total of a span including its
  children; **self seconds** are cumulative minus the children's
  cumulative — the time spent in the span's own code;
* the engine's hot loop avoids context-manager overhead by parking the
  recorder's cursor on a pre-resolved node (:meth:`SpanRecorder.node`,
  plain attribute assignment per event) and folding the accumulated
  deltas afterwards.

Two usage styles mirror the old profiler:

* ``with recorder.span("name"):`` — timed scope, nests automatically;
* ``recorder.add("name", dt)`` — fold a precomputed delta as a child of
  the current span (hot loops: two ``perf_counter`` calls, no ``with``).

:class:`~repro.obs.profiler.PhaseProfiler` is now a thin shim over a
recorder subtree; its flat ``report()`` aggregates the tree by span name
so existing ``phase_timings`` consumers see identical keys.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["SpanNode", "SpanRecorder"]


class SpanNode:
    """One aggregation node of the span tree.

    ``seconds`` is cumulative (includes children); ``calls`` counts how
    many timed scopes / folded deltas landed here.  Nodes are created
    lazily per ``(parent, name)`` pair and never removed except by
    :meth:`SpanRecorder.clear`.
    """

    __slots__ = ("name", "parent", "seconds", "calls", "children")

    def __init__(self, name: str, parent: Optional["SpanNode"] = None) -> None:
        self.name = name
        self.parent = parent
        self.seconds = 0.0
        self.calls = 0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        """The child node called ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name, self)
            self.children[name] = node
        return node

    @property
    def self_seconds(self) -> float:
        """Cumulative seconds minus the children's cumulative seconds.

        Untimed interior nodes (calls == 0, e.g. the root anchor) have no
        own timing; their cumulative *is* the children's sum and their
        self time is 0.
        """
        child_total = sum(c.cumulative_seconds for c in self.children.values())
        if not self.calls:
            return 0.0
        return max(0.0, self.seconds - child_total)

    @property
    def cumulative_seconds(self) -> float:
        """Timed total; untimed anchors report their children's sum."""
        if not self.calls:
            return sum(c.cumulative_seconds for c in self.children.values())
        return self.seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanNode({self.name!r}, seconds={self.seconds:.4f}, "
            f"calls={self.calls}, children={len(self.children)})"
        )


class SpanRecorder:
    """A tree of timed spans with a movable cursor (the current span).

    The cursor (:attr:`current`) is what :meth:`add` and :meth:`span`
    attach to.  Hot loops may park it directly on a pre-resolved node
    (``recorder.current = node``) — one attribute store per event — and
    fold their accumulated deltas afterwards via :meth:`fold`.
    """

    __slots__ = ("root", "current")

    def __init__(self) -> None:
        self.root = SpanNode("root")
        self.current = self.root

    # -- recording -------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[SpanNode]:
        """Timed scope: a child of the current span, nesting on re-entry."""
        node = self.current.child(name)
        parent = self.current
        self.current = node
        t0 = perf_counter()
        try:
            yield node
        finally:
            node.seconds += perf_counter() - t0
            node.calls += 1
            self.current = parent

    def add(self, name: str, dt: float, calls: int = 1) -> None:
        """Fold a precomputed delta into a child of the current span."""
        # inlined child lookup: this runs a few hundred thousand times per
        # sweep point, so skip the extra method hop of ``child()``
        cur = self.current
        node = cur.children.get(name)
        if node is None:
            node = SpanNode(name, cur)
            cur.children[name] = node
        node.seconds += dt
        node.calls += calls

    def node(self, name: str, parent: Optional[SpanNode] = None) -> SpanNode:
        """Resolve (creating if needed) a child node for cursor parking."""
        return (parent if parent is not None else self.current).child(name)

    @staticmethod
    def fold(node: SpanNode, dt: float, calls: int = 1) -> None:
        """Fold accumulated seconds directly into a pre-resolved node."""
        node.seconds += dt
        node.calls += calls

    def clear(self, anchor: Optional[SpanNode] = None) -> None:
        """Drop the subtree under ``anchor`` (default: the whole tree)."""
        node = anchor if anchor is not None else self.root
        node.children.clear()
        node.seconds = 0.0
        node.calls = 0
        self.current = node

    # -- queries ---------------------------------------------------------------
    def walk(
        self, anchor: Optional[SpanNode] = None
    ) -> Iterator[Tuple[int, SpanNode]]:
        """Depth-first ``(depth, node)`` pairs under (and including) anchor."""
        stack: List[Tuple[int, SpanNode]] = [
            (0, anchor if anchor is not None else self.root)
        ]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in sorted(
                node.children.values(), key=lambda c: c.cumulative_seconds
            ):
                stack.append((depth + 1, child))

    def flat(
        self, anchor: Optional[SpanNode] = None
    ) -> Dict[str, Dict[str, float]]:
        """Per-name totals aggregated over the subtree: the legacy flat view.

        Returns ``{name: {"seconds": s, "calls": n}}`` summing every node
        with that name, so a phase timed under several parents (e.g.
        ``drop_expired`` under both visit_start and visit_end) reports one
        total — exactly the old :class:`PhaseProfiler` accounting.
        """
        out: Dict[str, Dict[str, float]] = {}
        base = anchor if anchor is not None else self.root
        for _, node in self.walk(base):
            if node is base or not node.calls and not node.seconds:
                continue
            slot = out.setdefault(node.name, {"seconds": 0.0, "calls": 0})
            slot["seconds"] += node.seconds
            slot["calls"] += node.calls
        return out

    def tree(self, anchor: Optional[SpanNode] = None) -> Dict[str, Any]:
        """JSON-shaped span tree with ids, parent ids and self/cum seconds.

        Ids are depth-first ordinals assigned at export time; children are
        sorted by cumulative seconds descending.  Zero-cost leaf nodes
        (never entered, no timed descendants) are pruned.
        """
        counter = [0]

        def export(node: SpanNode, parent_id: Optional[int]) -> Dict[str, Any]:
            node_id = counter[0]
            counter[0] += 1
            rec: Dict[str, Any] = {
                "id": node_id,
                "parent_id": parent_id,
                "name": node.name,
                "seconds": node.cumulative_seconds,
                "self_seconds": node.self_seconds,
                "calls": node.calls,
            }
            children = [
                c
                for c in sorted(
                    node.children.values(),
                    key=lambda c: -c.cumulative_seconds,
                )
                if c.calls or c.seconds or c.children
            ]
            if children:
                rec["children"] = [export(c, node_id) for c in children]
            return rec

        return export(anchor if anchor is not None else self.root, None)
