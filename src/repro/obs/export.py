"""Profile exports: collapsed-stack flamegraphs, span trees, payloads.

The collapsed-stack format is one line per unique stack —
``root;caller;callee <count>`` — consumable by ``flamegraph.pl``,
speedscope, and most flamegraph viewers.  The profile *payload* is the
JSON document ``repro profile --out`` writes and ``repro db ingest``
recognises (``kind: "profile"``): span tree, flat per-phase totals,
sampler stacks and allocation sites, plus enough provenance (scenario
dict, label, wall seconds) to chart per-phase trends across commits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "collapsed_lines",
    "write_flamegraph",
    "profile_payload",
    "write_profile",
    "render_span_tree",
    "span_tree_rows",
]


def collapsed_lines(samples: Mapping[Tuple[str, ...], int]) -> List[str]:
    """Collapsed-stack lines (``a;b;c 12``), heaviest stacks first."""
    return [
        f"{';'.join(stack)} {count}"
        for stack, count in sorted(
            samples.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]


def write_flamegraph(
    samples: Mapping[Tuple[str, ...], int], path: Union[str, Path]
) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    lines = collapsed_lines(samples)
    Path(path).write_text(
        "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
    )
    return len(lines)


def span_tree_rows(
    tree: Mapping[str, Any],
    *,
    min_fraction: float = 0.001,
) -> List[Tuple[int, str, float, float, int]]:
    """Flatten a span tree into ``(depth, name, cum_s, self_s, calls)`` rows.

    Children come pre-sorted (heaviest first) from ``SpanRecorder.tree``;
    spans below ``min_fraction`` of the root's cumulative seconds are
    skipped so hot paths stay readable.
    """
    root_seconds = float(tree.get("seconds") or 0.0)
    floor = root_seconds * min_fraction
    rows: List[Tuple[int, str, float, float, int]] = []

    def visit(node: Mapping[str, Any], depth: int) -> None:
        seconds = float(node.get("seconds") or 0.0)
        if depth and seconds < floor:
            return
        rows.append(
            (
                depth,
                str(node.get("name", "?")),
                seconds,
                float(node.get("self_seconds") or 0.0),
                int(node.get("calls") or 0),
            )
        )
        for child in node.get("children", ()):
            visit(child, depth + 1)

    visit(tree, 0)
    return rows


def render_span_tree(
    tree: Mapping[str, Any],
    *,
    max_rows: int = 60,
    min_fraction: float = 0.001,
) -> str:
    """Human-readable indented span tree with cum/self seconds per span."""
    rows = span_tree_rows(tree, min_fraction=min_fraction)
    shown = rows[:max_rows]
    name_width = max(
        (len("  " * depth + name) for depth, name, *_ in shown), default=4
    )
    name_width = max(name_width, len("span"))
    header = (
        f"{'span':<{name_width}}  {'cum s':>10}  {'self s':>10}  {'calls':>10}"
    )
    lines = [header, "-" * len(header)]
    for depth, name, seconds, self_seconds, calls in shown:
        label = "  " * depth + name
        lines.append(
            f"{label:<{name_width}}  {seconds:>10.4f}  "
            f"{self_seconds:>10.4f}  {calls:>10d}"
        )
    if len(rows) > max_rows:
        lines.append(f"... {len(rows) - max_rows} more spans elided")
    return "\n".join(lines)


def profile_payload(
    *,
    label: str,
    scenario: Optional[Mapping[str, Any]],
    wall_seconds: float,
    span_tree: Mapping[str, Any],
    phases: Mapping[str, Mapping[str, float]],
    recorded_at: str,
    sampler: Optional[Any] = None,
) -> Dict[str, Any]:
    """Assemble the ingestible profile document (``kind: "profile"``)."""
    payload: Dict[str, Any] = {
        "kind": "profile",
        "label": label,
        "recorded_at": recorded_at,
        "scenario": dict(scenario) if scenario is not None else None,
        "wall_seconds": float(wall_seconds),
        "span_tree": dict(span_tree),
        "phases": {
            name: {
                "seconds": float(rec["seconds"]),
                "calls": int(rec["calls"]),
            }
            for name, rec in phases.items()
        },
        "hz": None,
        "n_samples": 0,
        "flamegraph": [],
        "allocations": [],
    }
    if sampler is not None:
        payload["hz"] = sampler.hz
        payload["n_samples"] = sampler.n_samples
        payload["flamegraph"] = collapsed_lines(sampler.samples)
        payload["allocations"] = list(sampler.allocations)
    return payload


def write_profile(payload: Mapping[str, Any], path: Union[str, Path]) -> None:
    """Write a profile payload as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
