#!/usr/bin/env python
"""Quickstart: route packets between campus buildings with DTN-FLOW.

Builds a synthetic campus mobility trace (the DART-like substitute), runs
DTN-FLOW and two baselines over the same workload, and prints the paper's
four metrics side by side.

Run:  python examples/quickstart.py
"""

from repro import PAPER_PROTOCOLS, SimConfig, dart_like, make_protocol, run_simulation
from repro.mobility.trace import days
from repro.utils.tables import format_table


def main() -> None:
    # 1) a mobility trace: 60 students over ~23 campus buildings, 40 days,
    #    generated as a raw WLAN association log and cleaned by the same
    #    preprocessing pipeline the paper applied to the real DART data
    trace = dart_like("small", seed=1)
    print(f"trace: {trace}")

    # 2) the experiment workload (Section V-A.1 of the paper, scaled down):
    #    500 packets per landmark per day nominal, 2000 kB node buffers,
    #    20-day TTL scaled to the shorter trace
    config = SimConfig(
        rate_per_landmark_per_day=500.0,
        workload_scale=0.01,          # scale packets to the smaller trace
        memory_scale=0.005,           # keep memory the binding resource
        node_memory_kb=2000.0,
        ttl=days(7.0),
        time_unit=days(3.0),
        seed=3,
        contact_prob=0.2,
    )

    # 3) run DTN-FLOW against two of the paper's baselines
    rows = []
    for name in ("DTN-FLOW", "SimBet", "PROPHET"):
        result = run_simulation(trace, make_protocol(name), config)
        rows.append(
            [
                name,
                result.generated,
                f"{result.success_rate:.3f}",
                f"{result.avg_delay / 3600.0:.1f}",
                result.forwarding_ops,
                result.total_cost,
            ]
        )
    print()
    print(
        format_table(
            ["protocol", "packets", "success rate", "avg delay (h)", "fwd ops", "total cost"],
            rows,
            title="Campus data exchange, identical workload:",
        )
    )
    print(
        "\nDTN-FLOW forwards along inter-landmark flows, so it delivers the "
        "most packets with the lowest delay among the high-success methods."
    )


if __name__ == "__main__":
    main()
