#!/usr/bin/env python3
"""Drive a running ``repro serve`` instance end to end.

Start the server in another terminal first::

    python -m repro serve --record --db serve-demo.sqlite

then run this script.  It submits a small two-protocol scenario, follows
the job's live SSE stream (per-point metrics and ETA as they land),
prints the final per-point results, and finishes with a wall-clock
replay: the same run streamed again as live packet events, one simulated
hour per wall-clock second.

Point ``--url`` elsewhere to drive a remote server.  See
docs/service.md for the full API.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve import ServeClient, ServeError

SCENARIO = {
    "name": "serve-demo",
    "trace": {"profile": "DART", "seed": 1},
    "sim": {"workload_scale": 0.05},
    "protocols": ["DTN-FLOW", "Epidemic"],
    "seeds": [1],
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8731",
                        help="server base URL (default %(default)s)")
    parser.add_argument("--replay-speed", type=float, default=3600.0,
                        help="sim seconds per wall second for the replay "
                             "(default %(default)s = 1 sim hour / second)")
    parser.add_argument("--replay-limit", type=int, default=30,
                        help="replay frames to stream (default %(default)s)")
    args = parser.parse_args()

    client = ServeClient(args.url)
    try:
        health = client.health()
    except (ServeError, OSError) as exc:
        print(f"cannot reach {args.url} ({exc}); "
              "start one with: python -m repro serve", file=sys.stderr)
        return 1
    print(f"server up, jobs so far: {health['jobs'] or 'none'}")

    job = client.submit(SCENARIO, label="serve-demo")
    print(f"submitted {job['id']}: {job['n_points']} points "
          f"(scenario {job['content_hash'][:12]})")

    print("\n--- live event stream ---")
    for event, data in client.events(job["id"]):
        if event == "point.started":
            print(f"  [{data['index']}] {data['protocol']} started")
        elif event == "point.finished":
            eta = data.get("eta_seconds")
            metrics = data["metrics"]
            print(f"  [{data['index']}] {data['protocol']} done "
                  f"{data['done']}/{data['total']}  "
                  f"success={metrics['success_rate']:.4f}  "
                  f"eta={'%.1fs' % eta if eta else '-'}")
        else:
            print(f"  {event}")

    final = client.job(job["id"], results=True)
    print(f"\nfinal state: {final['state']}"
          + (f", recorded: {final['recorded']}" if final["recorded"] else ""))
    for point in final["results"]:
        m = point["metrics"]
        print(f"  {point['protocol']:>10}  success={m['success_rate']:.4f}  "
              f"delivered={m['delivered']}")

    print(f"\n--- wall-clock replay ({args.replay_speed:g} sim s / wall s, "
          f"first {args.replay_limit} events) ---")
    single_point = {**SCENARIO, "protocols": ["DTN-FLOW"]}
    for event, data in client.replay(
        single_point, speed=args.replay_speed, limit=args.replay_limit
    ):
        if event == "replay.finished":
            print(f"replay done: {data['events_streamed']} streamed of "
                  f"{data['events_emitted']} emitted, "
                  f"success={data['metrics']['success_rate']:.4f}")
        else:
            print(f"  t={data['t']:>12.1f}  wall={data['wall_s']:6.2f}s  "
                  f"{event}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
