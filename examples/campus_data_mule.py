#!/usr/bin/env python
"""Campus data collection: every building reports to the library.

Recreates the paper's real deployment (Section V-C): nine students carry
phones across eight campus landmarks; each non-library landmark generates
sensor reports addressed to the library (the paper's L1), and the students'
ordinary movements deliver them.

Prints the deployment dashboard: success rate, delay quantiles, the transit
bandwidth map and the routing tables — Fig. 16 and Table X in miniature.

Run:  python examples/campus_data_mule.py
"""

from repro.eval.deployment import LIBRARY, run_deployment
from repro.utils.tables import format_table


def main() -> None:
    result = run_deployment(trace_days=6, seed=7)
    m = result.metrics

    print("=== campus deployment: all packets -> library (L0) ===\n")
    print(f"packets generated : {m.generated}")
    print(f"delivered         : {m.delivered}  ({m.success_rate:.1%})")
    s = result.delay_summary
    print(
        "delay (minutes)   : "
        f"min={s.minimum / 60:.0f}  q1={s.q1 / 60:.0f}  mean={s.mean / 60:.0f}  "
        f"q3={s.q3 / 60:.0f}  max={s.maximum / 60:.0f}"
    )

    print("\nmeasured transit-link bandwidths (Fig. 16b; < 0.14 omitted):")
    rows = [
        [f"L{a} -> L{b}", round(bw, 2)]
        for (a, b), bw in sorted(result.link_bandwidths.items(), key=lambda kv: -kv[1])
    ]
    print(format_table(["link", "transits/unit"], rows))

    print("\nrouting tables (Table X; delay in hours):")
    rows = []
    for lid, entries in sorted(result.routing_tables.items()):
        for e in entries:
            if e.dest == LIBRARY:
                rows.append([f"L{lid}", f"L{e.next_hop}", round(e.delay / 3600.0, 1)])
    print(format_table(["landmark", "next hop to library", "expected delay"], rows))

    print(
        "\nEvery landmark has learned a route to the library purely from "
        "student movements - no fixed links, no GPS, no infrastructure "
        "beyond the eight central stations."
    )


if __name__ == "__main__":
    main()
