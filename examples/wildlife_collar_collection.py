#!/usr/bin/env python
"""Wildlife tracking: collect collar logs at a ranger base camp.

The paper cites ZebraNet as a DTN application: digital collars on animals
log sensor data, and the logs must reach researchers without any network
infrastructure.  Animals congregate at waterholes — natural landmarks —
so solar stations at the waterholes plus DTN-FLOW turn herd movements into
a data-collection network.  Collared animals also relay packets *for each
other's* logs between waterholes, which is exactly the inter-landmark flow
idea.

Shows: landmark selection from raw sighting coordinates (Section IV-A),
dead-end prevention (an animal that wanders far from all waterholes), and
addressing packets to the base camp.

Run:  python examples/wildlife_collar_collection.py
"""

import numpy as np

from repro.core import DTNFlowConfig, DTNFlowProtocol, Place, select_landmarks
from repro.mobility.trace import Trace, VisitRecord, days, hours
from repro.sim import SimConfig, Simulation
from repro.utils.tables import format_table

BASE_CAMP = 0
N_WATERHOLES = 5
N_ANIMALS = 20
DAYS = 40


def build_trace(seed: int = 21) -> Trace:
    """Herds rotating between waterholes; rangers shuttle camp <-> holes."""
    rng = np.random.default_rng(seed)
    records = []
    # herd structure: each animal prefers 2-3 waterholes near its range
    for animal in range(N_ANIMALS):
        fav = 1 + animal % N_WATERHOLES
        second = 1 + (animal + 1 + animal % 2) % N_WATERHOLES
        t = rng.uniform(0, hours(6))
        for day in range(DAYS):
            t = day * days(1.0) + hours(5) + rng.uniform(0, hours(2))
            # morning and evening drinking visits; occasional wandering
            for _ in range(2):
                if rng.random() < 0.1:
                    hole = 1 + int(rng.integers(0, N_WATERHOLES))
                elif rng.random() < 0.7:
                    hole = fav
                else:
                    hole = second
                dwell = rng.uniform(hours(0.5), hours(2))
                records.append(
                    VisitRecord(start=t, end=t + dwell, node=animal, landmark=hole)
                )
                t += dwell + rng.uniform(hours(3), hours(6))
    # two ranger vehicles: daily circuit base camp -> two waterholes -> camp
    for ranger in (100, 101, 102):
        for day in range(DAYS):
            t = day * days(1.0) + hours(7) + (ranger - 100) * hours(3)
            circuit = [BASE_CAMP, 1 + (day + ranger) % N_WATERHOLES,
                       1 + (day + ranger + 2) % N_WATERHOLES,
                       1 + (day + ranger + 3) % N_WATERHOLES, BASE_CAMP]
            for lm in circuit:
                dwell = rng.uniform(hours(0.4), hours(1.0))
                records.append(
                    VisitRecord(start=t, end=t + dwell, node=ranger, landmark=int(lm))
                )
                t += dwell + rng.uniform(hours(0.5), hours(1.0))
    return Trace(records, name="wildlife")


def main() -> None:
    trace = build_trace()
    print(f"trace: {trace}")

    # Section IV-A: rank candidate sites by popularity, keep those at least
    # 3 km apart (two pools of the same waterhole are one landmark)
    rng = np.random.default_rng(0)
    candidates = []
    for lm in trace.landmarks:
        visits = sum(1 for r in trace if r.landmark == lm)
        x, y = rng.uniform(0, 30, 2)
        candidates.append(Place(place_id=lm, x=float(x), y=float(y), visits=visits))
    chosen = select_landmarks(candidates, d_min=3.0)
    print(f"landmark sites kept: {[p.place_id for p in chosen]}")

    # collar logs: every waterhole generates reports for the base camp
    config = SimConfig(
        rate_per_landmark_per_day=12.0,
        node_memory_kb=60.0,
        ttl=days(6.0),
        time_unit=days(1.0),
        seed=2,
        destinations=(BASE_CAMP,),
        sources=tuple(l for l in trace.landmarks if l != BASE_CAMP),
    )
    protocol = DTNFlowProtocol(
        DTNFlowConfig(enable_deadend=True, deadend_gamma=3.0)
    )
    result = Simulation(trace, protocol, config).run()

    print()
    rows = [
        ["collar logs generated", result.generated],
        ["collected at base camp", result.delivered],
        ["collection rate", f"{result.success_rate:.3f}"],
        ["avg latency (h)", f"{result.avg_delay / 3600:.1f}"],
        ["expired in the bush", result.dropped_ttl],
    ]
    print(format_table(["metric", "value"], rows, title="Collar-log collection:"))

    # which waterhole routes feed the camp?
    camp_routes = []
    for lid, table in protocol.routing_tables().items():
        if lid == BASE_CAMP:
            continue
        entry = table.lookup(BASE_CAMP)
        if entry:
            camp_routes.append([f"waterhole {lid}", f"via {entry.next_hop}",
                                round(entry.delay / 3600, 1)])
    print()
    print(format_table(["from", "route to camp", "delay (h)"], camp_routes,
                       title="Learned collection routes:"))


if __name__ == "__main__":
    main()
