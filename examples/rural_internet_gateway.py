#!/usr/bin/env python
"""Rural internet access: villages exchange data with a city gateway.

The paper's motivating application (Section I): remote villages have no
infrastructure network, but people and vehicles routinely travel between
villages and the market town.  Placing a DTN-FLOW central station in each
village and at the town gateway turns those journeys into a store-carry-
forward uplink.

This example builds the mobility trace *by hand* from VisitRecords —
showing how to feed your own mobility data to the library — plans the
landmarks with the Section IV-A selection API, and measures uplink/downlink
throughput to the gateway.

Run:  python examples/rural_internet_gateway.py
"""

import numpy as np

from repro.core import DTNFlowConfig, DTNFlowProtocol, plan_landmarks, render_subareas_ascii
from repro.mobility.trace import Trace, VisitRecord, days, hours
from repro.sim import MessageSegmenter, SimConfig, Simulation
from repro.utils.tables import format_table

GATEWAY = 0  # the market town with the internet uplink
N_VILLAGES = 6
N_TRAVELLERS = 24
DAYS = 30


def build_trace(seed: int = 5) -> Trace:
    """Traders and buses moving village <-> market town, with some
    village-to-village traffic along the road."""
    rng = np.random.default_rng(seed)
    records = []
    for person in range(N_TRAVELLERS):
        home = 1 + person % N_VILLAGES
        # each traveller has a market-day cadence of 1-3 days
        cadence = int(rng.integers(1, 4))
        t = rng.uniform(0, hours(12))
        for day in range(DAYS):
            if day % cadence == person % cadence:
                # trip: home -> (maybe a neighbour village) -> town -> home
                t = day * days(1.0) + hours(7) + rng.uniform(0, hours(2))
                stops = [home]
                if rng.random() < 0.3:
                    stops.append(1 + int(rng.integers(0, N_VILLAGES)))
                stops += [GATEWAY, home]
                for lm in stops:
                    dwell = rng.uniform(hours(0.5), hours(2.5))
                    records.append(
                        VisitRecord(start=t, end=t + dwell, node=person, landmark=int(lm))
                    )
                    t += dwell + rng.uniform(hours(0.5), hours(1.5))
            else:
                # stay in the village all day
                t0 = day * days(1.0) + hours(8)
                records.append(
                    VisitRecord(start=t0, end=t0 + hours(9), node=person, landmark=home)
                )
    return Trace(records, name="rural-uplink")


def main() -> None:
    trace = build_trace()
    print(f"trace: {trace}")

    # Section IV-A planning: confirm the villages are far enough apart to be
    # separate landmarks (coordinates in km; the gateway at the centre)
    coords = {GATEWAY: (0.0, 0.0)}
    for v in range(1, N_VILLAGES + 1):
        angle = 2 * np.pi * v / N_VILLAGES
        coords[v] = (12 * np.cos(angle), 12 * np.sin(angle))
    visit_counts = {lm: sum(1 for r in trace if r.landmark == lm) for lm in trace.landmarks}
    subareas = plan_landmarks(coords, visit_counts, d_min=5.0)
    print(f"planned subareas: {subareas.n_subareas} (one per village + gateway)")
    print("\nsubarea division (digits = owning landmark, * = station):")
    print(render_subareas_ascii(subareas, width=44, height=14))

    # uplink workload: villages report to the gateway; the gateway also
    # pushes content back out (downlink)
    config = SimConfig(
        rate_per_landmark_per_day=40.0,
        node_memory_kb=30.0,
        packet_size=1024,
        ttl=days(3.0),
        time_unit=days(1.0),
        seed=11,
    )
    protocol = DTNFlowProtocol(DTNFlowConfig(enable_load_balance=True))
    sim = Simulation(trace, protocol, config)
    result = sim.run()

    metrics = sim.world.metrics
    uplink = metrics.delivered_by_dst.get(GATEWAY, 0)
    downlink = sum(v for k, v in metrics.delivered_by_dst.items() if k != GATEWAY)

    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["packets generated", result.generated],
                ["delivered", result.delivered],
                ["success rate", f"{result.success_rate:.3f}"],
                ["avg delay (h)", f"{result.avg_delay / 3600:.1f}"],
                ["uplink deliveries (to town)", uplink],
                ["village-bound deliveries", downlink],
            ],
            title="Rural gateway throughput:",
        )
    )

    # file upload: a 25 kB report from village 3, segmented into 1 kB
    # packets (Section III-A.1's "divide a large packet into segments")
    seg_sim = Simulation(trace, DTNFlowProtocol(), config)
    segmenter = MessageSegmenter(seg_sim.factory)
    upload = {}

    def inject(world):
        packets = segmenter.segment(src=3, dst=GATEWAY, message_size=25 * 1024, now=world.now)
        for p in packets:
            world.stations[3].buffer.add(p)
            world.metrics.on_generated()
        upload["mid"] = packets[0].meta["message_id"]

    seg_sim.probes = [(trace.duration * 0.5, inject)]
    seg_sim.run()
    status = segmenter.status(upload["mid"])
    done = status.completion_time
    print()
    print(
        f"file upload from village 3: {status.delivered_segments}/{status.n_segments} "
        f"segments arrived"
        + (f"; complete after {(done - trace.duration * 0.5) / 3600:.1f} h" if done else "")
    )

    gw_table = protocol.routing_tables()[GATEWAY]
    rows = [[f"village {e.dest}", f"via {e.next_hop}", round(e.delay / 3600, 1)] for e in gw_table.entries()]
    print()
    print(format_table(["destination", "route", "delay (h)"], rows,
                       title="Gateway routing table (delays in hours):"))


if __name__ == "__main__":
    main()
